// ShardServer: the server half of the multi-process shard fabric.
//
// One process hosts any number of slots; each slot is a full
// api::AnalysisSession (kLiveFeed, num_shards = 1, persist_dir =
// <dir>/slot-<id>, recover = true with suffix feeding) — so a slot
// gets the ENTIRE single-machine stack: engine, event store, segment
// log, checkpoints, telemetry.  The fabric adds nothing to the data
// plane; it only moves slots behind sockets.
//
// Protocol handling (fabric/protocol.h):
//   * HELLO        version negotiation; data lanes also learn the
//                  slot's recovered accepted count for their producer.
//   * APPEND       idempotent by sub-update index: indices below the
//                  accepted count are replay duplicates and are
//                  skipped; a gap above it is a protocol error.
//   * CHECKPOINT   drain + checkpoint_now on the slot session — the
//                  drained cut that advances the durable totals.
//   * QUERY        the slot's full event set, record-codec payloads.
//   * CLOSE        session.close(end_time): force-close open events.
//   * HANDOFF_FETCH / HANDOFF_INSTALL / RELEASE
//                  migration: ship the quiesced slot directory,
//                  recover it on the target, drop the source replica.
//   * HEALTH       slot count + worst session health.
//   * SHUTDOWN     graceful exit (run loop stops, wait() returns).
//
// Concurrency: one blocking thread per connection.  A slot has a
// shared_mutex (APPEND/QUERY shared, control ops exclusive) plus one
// mutex per producer lane, so a reconnecting lane can never race its
// predecessor's last push.  Slot sessions are created lazily on first
// touch and recover themselves from their directory — a SIGKILLed
// server restarted on the same directory resumes where its last
// drained checkpoint left every slot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "core/study.h"
#include "fabric/socket.h"
#include "telemetry/metrics.h"

namespace bgpbh::fabric {

struct ShardServerConfig {
  std::uint16_t port = 0;  // 0 = ephemeral; read back via port()
  // Root directory: slot <id> persists under <dir>/slot-<id>.
  std::string dir;
  // Substrates + window for every slot session.  table_dump_episodes
  // is forced to 0 (each slot session would fold the dump once,
  // duplicating its opens across slots; clients replicate the
  // restriction).
  core::StudyConfig study;
  std::size_t num_producers = 1;
  telemetry::MetricsRegistry* metrics = nullptr;  // optional, borrowed
  // Trace-ring configuration for every slot session: enable it so
  // server-side RPC spans (fabric.server.*) reach the ring and can be
  // stitched against client spans via STATS / fleet_telemetry().
  telemetry::TraceConfig trace;
};

class ShardServer {
 public:
  // Binds + starts the accept loop; throws std::runtime_error when the
  // port cannot be bound.
  explicit ShardServer(ShardServerConfig config);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  // Blocks until a SHUTDOWN frame arrives (or stop() is called).
  void wait();
  // Stop accepting, sever every connection, join all threads, destroy
  // the slot sessions (their directories stay — a restart recovers).
  // Idempotent.
  void stop();

  std::size_t slots_hosted() const;

 private:
  struct Slot {
    std::shared_mutex mu;  // session lifecycle + control vs data ops
    std::unique_ptr<api::AnalysisSession> session;
    // Per-producer lane serialization: a reconnected lane's APPEND
    // must not race the predecessor connection's in-flight push.
    std::vector<std::unique_ptr<std::mutex>> lane_mu;
    // Sub-updates accepted / made durable per producer (lane indices).
    std::vector<std::uint64_t> accepted;
    std::vector<std::uint64_t> durable;
    bool released = false;
  };

  void accept_loop();
  void serve(TcpConn conn);
  // Handlers return false to drop the connection (after kError).
  // `version` is the HELLO-negotiated session version: v2+ bodies carry
  // a trace-context header (u64 trace_id | u64 origin_ns) and v2
  // sub-updates a trailing ingest stamp.
  bool handle_frame(TcpConn& conn, const TcpConn::FramePayload& frame,
                    std::uint8_t version);
  bool handle_append(TcpConn& conn, const std::vector<std::uint8_t>& body,
                     std::uint8_t version);
  bool handle_query(TcpConn& conn, const std::vector<std::uint8_t>& body,
                    std::uint8_t version);
  bool handle_checkpoint(TcpConn& conn, const std::vector<std::uint8_t>& body,
                         std::uint8_t version);
  bool handle_stats(TcpConn& conn, const std::vector<std::uint8_t>& body,
                    std::uint8_t version);
  bool handle_close(TcpConn& conn, const std::vector<std::uint8_t>& body);
  bool handle_health(TcpConn& conn);
  bool handle_handoff_fetch(TcpConn& conn,
                            const std::vector<std::uint8_t>& body);
  bool handle_handoff_install(TcpConn& conn,
                              const std::vector<std::uint8_t>& body);
  bool handle_release(TcpConn& conn, const std::vector<std::uint8_t>& body);

  std::string slot_dir(std::uint32_t slot) const;
  // Slot by id, created (and recovered from its directory) on first
  // touch.  Callers then lock slot->mu themselves.
  Slot& slot(std::uint32_t id);
  // Builds the slot's session from its directory (recover = true) and
  // seeds accepted/durable from the recovered totals.  Requires the
  // slot's unique lock.
  void open_slot_session_locked(Slot& s, std::uint32_t id);
  static bool send_error(TcpConn& conn, const std::string& message);

  ShardServerConfig config_;
  TcpListener listener_;
  std::thread accept_thread_;
  mutable std::mutex slots_mu_;
  std::map<std::uint32_t, std::unique_ptr<Slot>> slots_;
  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace bgpbh::fabric
