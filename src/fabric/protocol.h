// Fabric wire protocol: the message layer of the multi-process shard
// fabric (src/fabric/).
//
// Every message is one storage::wire frame (the SAME length-prefixed,
// versioned, CRC-checked framing the segment log's record codec uses —
// src/storage/wire.h), with a fabric magic and a one-byte frame type
// leading the payload:
//
//   u16 0xFAB1 | u8 version | u32 payload_len | payload | u32 crc
//   payload = u8 FrameType | type-specific body
//
// Composite bodies reuse existing codecs verbatim: APPEND carries
// single-prefix sub-updates encoded with bgp::encode_update_body, and
// QUERY results carry storage record payloads
// (storage::encode_event_payload) — so what crosses the socket is
// byte-identical to what a shard spills to its segment log.
//
// Version negotiation: each HELLO advertises the sender's readable
// [min, max] frame-version range; the server answers with
// storage::wire::negotiate_version's pick (the highest common version)
// or an ERROR frame when the ranges are disjoint.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/bytes.h"
#include "routing/collectors.h"

namespace bgpbh::fabric {

inline constexpr std::uint16_t kFabricMagic = 0xFAB1;
inline constexpr std::uint8_t kFabricVersionMin = 1;
// v2 (fleet observability): APPEND/QUERY/CHECKPOINT bodies gain a
// trace-context header (u64 trace_id | u64 origin_ns), sub-updates
// gain a trailing u64 ingest stamp, and the STATS/STATS_ACK frames
// exist.  Body layouts are governed by the HELLO-negotiated session
// version; a v2 peer talking to a v1 peer emits v1 bodies.
inline constexpr std::uint8_t kFabricVersionMax = 2;
// Byte length of the v2 sub-update ingest trailer: subs are staged and
// replay-buffered in v2 form, and a lane that negotiated v1 truncates
// this many bytes off each sub at send time.
inline constexpr std::size_t kSubUpdateIngestTrailerBytes = 8;
// HANDOFF ships whole checkpoint + segment files in one frame; records
// are ~66 B each, so this comfortably covers a shard's working set.
inline constexpr std::uint32_t kMaxFabricPayload = 64u << 20;

// Slot/producer value a control connection's HELLO carries (control
// lanes append nothing; they issue QUERY/CHECKPOINT/HANDOFF/... RPCs).
inline constexpr std::uint32_t kControlLane = 0xFFFFFFFFu;

enum class FrameType : std::uint8_t {
  kHello = 1,        // u8 min_ver | u8 max_ver | u32 slot | u32 producer
  kHelloAck,         // u8 version | u64 accepted (sub-updates, data lanes)
  kAppend,           // u32 slot | u32 producer | u64 base | u32 n | n subs
  kAppendAck,        // u64 accepted_total | u64 durable_total
  kQuery,            // u32 slot
  kQueryResult,      // u32 n | n event payloads (each u32-length-prefixed)
  kCheckpoint,       // u32 slot
  kCheckpointAck,    // u8 ok | u32 p | p x u64 durable
  kClose,            // u32 slot | u64 end_time
  kCloseAck,         // (empty)
  kHealth,           // (empty)
  kHealthAck,        // u32 slots_hosted | u8 worst_state
  kHandoffFetch,     // u32 slot
  kHandoffState,     // file set (encode_files)
  kHandoffInstall,   // u32 slot | file set
  kHandoffAck,       // u8 ok | u32 p | p x u64 accepted
  kRelease,          // u32 slot
  kReleaseAck,       // (empty)
  kShutdown,         // (empty)
  kShutdownAck,      // (empty)
  kError,            // utf-8 message (rest of payload)
  // v2+ only (fleet observability):
  kStats,            // u64 trace_id | u64 origin_ns | u32 max_spans
  kStatsAck,         // u32 n_slots | n x slot telemetry
                     //   (telemetry::encode_slot_telemetry)
};

// ---- sub-update codec -------------------------------------------------
// One single-prefix FeedUpdate, exactly as the client-side splitter
// materializes it (withdrawals carry no route attributes).  The body
// reuses the BGP UPDATE codec, so path attributes round-trip through
// the same fuzz-hardened decoder the MRT replay path uses.
//
// encode_sub_update always emits the v2 layout (trailing u64 ingest
// stamp); v1 senders truncate kSubUpdateIngestTrailerBytes at send
// time.  decode_sub_update reads the trailer iff `version` >= 2.
void encode_sub_update(const routing::FeedUpdate& fu, net::BufWriter& out);
std::optional<routing::FeedUpdate> decode_sub_update(
    net::BufReader& in, std::uint8_t version = kFabricVersionMax);

// ---- handoff file set -------------------------------------------------
// The shard-migration payload: every file of a quiesced slot's
// directory (checkpoint-*.ckpt + events-*.seg), name + raw bytes.
struct HandoffFile {
  std::string name;
  std::vector<std::uint8_t> bytes;
};
void encode_files(const std::vector<HandoffFile>& files, net::BufWriter& out);
std::optional<std::vector<HandoffFile>> decode_files(net::BufReader& in);

}  // namespace bgpbh::fabric
