#include "fabric/server.h"

#include <sys/socket.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <utility>

#include "storage/record_codec.h"
#include "storage/wire.h"
#include "telemetry/fleet.h"
#include "util/time.h"

namespace bgpbh::fabric {

namespace fs = std::filesystem;

namespace {

// Wall-clock delay between the client stamping a traced RPC and the
// server starting to handle it (wire + accept queue + clock skew).
void record_ingress_delay(telemetry::MetricsRegistry& reg,
                          std::uint64_t origin_ns) {
  if (origin_ns == 0) return;
  const std::uint64_t now = util::wall_clock_ns();
  if (now > origin_ns) {
    reg.histogram("fabric.server.ingress_delay_ns").record(now - origin_ns);
  }
}

}  // namespace

ShardServer::ShardServer(ShardServerConfig config)
    : config_(std::move(config)) {
  // One dump fold per slot session would duplicate the dump's opens
  // across slots; the client enforces the same restriction.
  config_.study.table_dump_episodes = 0;
  if (config_.num_producers == 0) config_.num_producers = 1;
  if (config_.dir.empty()) {
    throw std::runtime_error("fabric: ShardServer requires a data directory");
  }
  auto listener = TcpListener::listen(config_.port);
  if (!listener) {
    throw std::runtime_error("fabric: could not bind port " +
                             std::to_string(config_.port));
  }
  listener_ = std::move(*listener);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::wait() {
  std::unique_lock lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stopping_; });
}

void ShardServer::stop() {
  if (stopped_.exchange(true)) return;
  {
    std::lock_guard lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Wake every connection thread blocked in recv; the fds are owned
    // by the TcpConn inside each thread, so only shutdown() here.
    std::lock_guard lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  // Sessions are destroyed without close(): the slot directories hold
  // everything up to the last drained checkpoint, which is exactly
  // what a restart (or migration target) recovers.
  std::lock_guard lock(slots_mu_);
  slots_.clear();
}

std::size_t ShardServer::slots_hosted() const {
  std::lock_guard lock(slots_mu_);
  std::size_t n = 0;
  for (const auto& [id, slot] : slots_) {
    if (!slot->released) ++n;
  }
  return n;
}

void ShardServer::accept_loop() {
  for (;;) {
    auto conn = listener_.accept();
    if (!conn) return;  // shutdown
    std::lock_guard lock(conns_mu_);
    conn_fds_.push_back(conn->fd());
    conn_threads_.emplace_back(
        [this, c = std::move(*conn)]() mutable { serve(std::move(c)); });
  }
}

std::string ShardServer::slot_dir(std::uint32_t slot) const {
  return config_.dir + "/slot-" + std::to_string(slot);
}

ShardServer::Slot& ShardServer::slot(std::uint32_t id) {
  std::lock_guard lock(slots_mu_);
  auto& entry = slots_[id];
  if (!entry) {
    entry = std::make_unique<Slot>();
    entry->lane_mu.reserve(config_.num_producers);
    for (std::size_t p = 0; p < config_.num_producers; ++p) {
      entry->lane_mu.push_back(std::make_unique<std::mutex>());
    }
    entry->accepted.assign(config_.num_producers, 0);
    entry->durable.assign(config_.num_producers, 0);
  }
  return *entry;
}

void ShardServer::open_slot_session_locked(Slot& s, std::uint32_t id) {
  if (s.session) return;
  api::SessionConfig sc;
  sc.mode = api::SessionConfig::Mode::kLiveFeed;
  sc.study = config_.study;
  // The slot IS the shard: the client already routed by
  // stream::shard_for, so the local pipeline must not re-partition.
  sc.num_shards = 1;
  sc.num_producers = config_.num_producers;
  sc.persist_dir = slot_dir(id);
  // Recover from the newest drained cut; the client feeds only the
  // post-cut suffix (HELLO tells it where to resume), so replay-skips
  // must stay off.
  sc.recover = true;
  sc.recover_suffix_feed = true;
  // The client runs the poison quarantine; admitting everything here
  // keeps the lane index spaces aligned with what the client sent.
  sc.max_as_path_hops = std::size_t{1} << 20;
  sc.max_communities = std::size_t{1} << 20;
  sc.poison_error_budget = UINT64_MAX;
  // Supervision threads add nothing per-slot here: the watchdog would
  // be one thread per slot, and checkpoints are cut on demand.
  sc.stall_deadline = std::chrono::milliseconds(0);
  sc.checkpoint_every = 0;
  sc.trace = config_.trace;
  s.session = std::make_unique<api::AnalysisSession>(sc);
  telemetry::MetricsRegistry& reg = s.session->telemetry();
  reg.describe("fabric.server.append_ns",
               "Server-side APPEND handling latency (ns: decode + engine "
               "push, per batch)");
  reg.describe("fabric.server.query_ns",
               "Server-side QUERY handling latency (ns: drain + event "
               "serialization)");
  reg.describe("fabric.server.checkpoint_ns",
               "Server-side CHECKPOINT handling latency (ns: drain + "
               "checkpoint cut)");
  reg.describe("fabric.server.ingress_delay_ns",
               "Client send -> server receive delay per traced RPC (ns, "
               "wall clocks on both sides; includes clock skew)");
  s.session->start();
  const auto& recovered = s.session->recovered_updates_accepted();
  for (std::size_t p = 0; p < config_.num_producers; ++p) {
    std::uint64_t n = p < recovered.size() ? recovered[p] : 0;
    s.accepted[p] = n;
    s.durable[p] = n;
  }
}

bool ShardServer::send_error(TcpConn& conn, const std::string& message) {
  net::BufWriter body;
  body.bytes(std::span(reinterpret_cast<const std::uint8_t*>(message.data()),
                       message.size()));
  conn.send_frame(FrameType::kError, body.data());
  return false;  // drop the connection
}

void ShardServer::serve(TcpConn conn) {
  // HELLO first: version negotiation, and for data lanes the accepted
  // count the client resumes from.
  auto hello = conn.recv_frame();
  if (!hello || hello->type != FrameType::kHello) return;
  net::BufReader r(hello->body);
  std::uint8_t peer_min = r.u8();
  std::uint8_t peer_max = r.u8();
  std::uint32_t slot_id = r.u32();
  std::uint32_t producer = r.u32();
  if (!r.ok() || !r.at_end()) return;
  auto version = storage::wire::negotiate_version(
      kFabricVersionMin, kFabricVersionMax, peer_min, peer_max);
  if (!version) {
    send_error(conn, "no common fabric protocol version");
    return;
  }
  std::uint64_t accepted = 0;
  if (slot_id != kControlLane) {
    if (producer >= config_.num_producers) {
      send_error(conn, "producer index out of range");
      return;
    }
    Slot& s = slot(slot_id);
    std::unique_lock lock(s.mu);
    open_slot_session_locked(s, slot_id);
    accepted = s.accepted[producer];
  }
  net::BufWriter ack;
  ack.u8(*version);
  ack.u64(accepted);
  if (!conn.send_frame(FrameType::kHelloAck, ack.data())) return;
  for (;;) {
    auto frame = conn.recv_frame();
    if (!frame) return;  // EOF / reset / torn frame
    if (!handle_frame(conn, *frame, *version)) return;
  }
}

bool ShardServer::handle_frame(TcpConn& conn,
                               const TcpConn::FramePayload& frame,
                               std::uint8_t version) {
  switch (frame.type) {
    case FrameType::kAppend:
      return handle_append(conn, frame.body, version);
    case FrameType::kQuery:
      return handle_query(conn, frame.body, version);
    case FrameType::kCheckpoint:
      return handle_checkpoint(conn, frame.body, version);
    case FrameType::kStats:
      if (version < 2) return send_error(conn, "STATS requires fabric v2");
      return handle_stats(conn, frame.body, version);
    case FrameType::kClose:
      return handle_close(conn, frame.body);
    case FrameType::kHealth:
      return handle_health(conn);
    case FrameType::kHandoffFetch:
      return handle_handoff_fetch(conn, frame.body);
    case FrameType::kHandoffInstall:
      return handle_handoff_install(conn, frame.body);
    case FrameType::kRelease:
      return handle_release(conn, frame.body);
    case FrameType::kShutdown: {
      conn.send_frame(FrameType::kShutdownAck, {});
      // Wake wait(); the driver then runs stop() from its own thread
      // (this thread cannot join itself).
      {
        std::lock_guard lock(stop_mu_);
        stopping_ = true;
      }
      stop_cv_.notify_all();
      return false;
    }
    default:
      return send_error(conn, "unexpected frame type");
  }
}

bool ShardServer::handle_append(TcpConn& conn,
                                const std::vector<std::uint8_t>& body,
                                std::uint8_t version) {
  net::BufReader r(body);
  std::uint32_t slot_id = r.u32();
  std::uint32_t producer = r.u32();
  std::uint64_t trace_id = 0;
  std::uint64_t origin_ns = 0;
  if (version >= 2) {
    trace_id = r.u64();
    origin_ns = r.u64();
  }
  std::uint64_t base = r.u64();
  std::uint32_t count = r.u32();
  if (!r.ok() || producer >= config_.num_producers) {
    return send_error(conn, "malformed APPEND header");
  }
  Slot& s = slot(slot_id);
  std::shared_lock lock(s.mu);
  if (!s.session) {
    lock.unlock();
    {
      std::unique_lock create(s.mu);
      open_slot_session_locked(s, slot_id);
    }
    lock.lock();
  }
  // Server half of the RPC trace: a span bound to the client's trace
  // id, recorded into the slot session's registry/ring so STATS ships
  // it back for stitching.  Registry lookups here are per-batch, not
  // per-sub-update — wiring cost amortized over the batch.
  telemetry::MetricsRegistry& reg = s.session->telemetry();
  record_ingress_delay(reg, origin_ns);
  telemetry::ScopedSpan span(&reg.histogram("fabric.server.append_ns"),
                             &reg.trace(), "fabric.server.append", producer,
                             trace_id);
  std::lock_guard lane(*s.lane_mu[producer]);
  if (base > s.accepted[producer]) {
    // The client never advances past an unacked frame, so a gap means
    // the two sides disagree about history — refuse loudly.
    return send_error(conn, "APPEND gap: base " + std::to_string(base) +
                                " > accepted " +
                                std::to_string(s.accepted[producer]));
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    auto sub = decode_sub_update(r, version);
    if (!sub) return send_error(conn, "malformed sub-update");
    std::uint64_t index = base + i;
    if (index < s.accepted[producer]) continue;  // replay duplicate
    if (!s.session->push(*sub, producer)) {
      return send_error(conn, "slot session refused a sub-update");
    }
    s.accepted[producer] = index + 1;
  }
  if (!r.at_end()) return send_error(conn, "trailing bytes after APPEND");
  net::BufWriter ack;
  ack.u64(s.accepted[producer]);
  ack.u64(s.durable[producer]);
  return conn.send_frame(FrameType::kAppendAck, ack.data());
}

bool ShardServer::handle_query(TcpConn& conn,
                               const std::vector<std::uint8_t>& body,
                               std::uint8_t version) {
  net::BufReader r(body);
  std::uint32_t slot_id = r.u32();
  std::uint64_t trace_id = 0;
  std::uint64_t origin_ns = 0;
  if (version >= 2) {
    trace_id = r.u64();
    origin_ns = r.u64();
  }
  if (!r.ok() || !r.at_end()) return send_error(conn, "malformed QUERY");
  Slot& s = slot(slot_id);
  std::shared_lock lock(s.mu);
  std::vector<core::PeerEvent> events;
  std::optional<telemetry::ScopedSpan> span;
  if (s.session) {
    telemetry::MetricsRegistry& reg = s.session->telemetry();
    record_ingress_delay(reg, origin_ns);
    span.emplace(&reg.histogram("fabric.server.query_ns"), &reg.trace(),
                 "fabric.server.query", slot_id, trace_id);
    events = s.session->events();
  }
  net::BufWriter out;
  out.u32(static_cast<std::uint32_t>(events.size()));
  for (const auto& event : events) {
    net::BufWriter payload;
    storage::encode_event_payload(event, payload);
    out.u32(static_cast<std::uint32_t>(payload.size()));
    out.bytes(payload.data());
  }
  return conn.send_frame(FrameType::kQueryResult, out.data());
}

bool ShardServer::handle_checkpoint(TcpConn& conn,
                                    const std::vector<std::uint8_t>& body,
                                    std::uint8_t version) {
  net::BufReader r(body);
  std::uint32_t slot_id = r.u32();
  std::uint64_t trace_id = 0;
  std::uint64_t origin_ns = 0;
  if (version >= 2) {
    trace_id = r.u64();
    origin_ns = r.u64();
  }
  if (!r.ok() || !r.at_end()) return send_error(conn, "malformed CHECKPOINT");
  Slot& s = slot(slot_id);
  std::unique_lock lock(s.mu);
  bool ok = false;
  if (s.session && !s.session->closed()) {
    telemetry::MetricsRegistry& reg = s.session->telemetry();
    record_ingress_delay(reg, origin_ns);
    telemetry::ScopedSpan span(&reg.histogram("fabric.server.checkpoint_ns"),
                               &reg.trace(), "fabric.server.checkpoint",
                               slot_id, trace_id);
    // Drain first: at a fully drained cut the per-producer watermark
    // sums equal the accepted counts — the invariant HELLO's resume
    // index depends on.
    s.session->drain();
    ok = s.session->checkpoint_now();
    if (ok) s.durable = s.accepted;
  }
  net::BufWriter ack;
  ack.u8(ok ? 1 : 0);
  ack.u32(static_cast<std::uint32_t>(config_.num_producers));
  for (std::size_t p = 0; p < config_.num_producers; ++p) {
    ack.u64(s.durable[p]);
  }
  return conn.send_frame(FrameType::kCheckpointAck, ack.data());
}

bool ShardServer::handle_stats(TcpConn& conn,
                               const std::vector<std::uint8_t>& body,
                               std::uint8_t version) {
  (void)version;  // v2-gated by handle_frame
  net::BufReader r(body);
  const std::uint64_t trace_id = r.u64();
  (void)trace_id;  // carried for symmetry; STATS itself is not traced
  const std::uint64_t origin_ns = r.u64();
  std::uint32_t max_spans = r.u32();
  if (!r.ok() || !r.at_end()) return send_error(conn, "malformed STATS");
  // Collect slot ids first, then take each slot's shared lock without
  // holding the directory mutex (a concurrent APPEND must not block on
  // a fleet scrape).
  std::vector<std::uint32_t> ids;
  {
    std::lock_guard lock(slots_mu_);
    ids.reserve(slots_.size());
    for (const auto& [id, s] : slots_) ids.push_back(id);
  }
  net::BufWriter out;
  std::size_t n_slots = 0;
  const std::size_t count_pos = out.size();
  out.u32(0);  // patched below
  for (std::uint32_t id : ids) {
    Slot& s = slot(id);
    std::shared_lock lock(s.mu);
    if (s.released || !s.session) continue;
    telemetry::MetricsRegistry& reg = s.session->telemetry();
    record_ingress_delay(reg, origin_ns);
    telemetry::SlotTelemetry slot_telemetry;
    slot_telemetry.slot = id;
    slot_telemetry.metrics = reg.snapshot();
    auto records = reg.trace().recent();
    const std::size_t first = records.size() > max_spans
                                  ? records.size() - max_spans
                                  : 0;  // newest max_spans records
    slot_telemetry.spans.reserve(records.size() - first);
    for (std::size_t i = first; i < records.size(); ++i) {
      const telemetry::TraceRecord& rec = records[i];
      slot_telemetry.spans.push_back(telemetry::FleetSpan{
          .label = rec.label,
          .shard = rec.shard,
          .duration_ns = rec.duration_ns,
          .seq = rec.seq,
          .trace_id = rec.trace_id,
      });
    }
    telemetry::encode_slot_telemetry(slot_telemetry, out);
    ++n_slots;
  }
  out.patch_u32(count_pos, static_cast<std::uint32_t>(n_slots));
  return conn.send_frame(FrameType::kStatsAck, out.data());
}

bool ShardServer::handle_close(TcpConn& conn,
                               const std::vector<std::uint8_t>& body) {
  net::BufReader r(body);
  std::uint32_t slot_id = r.u32();
  std::uint64_t end_time = r.u64();
  if (!r.ok() || !r.at_end()) return send_error(conn, "malformed CLOSE");
  Slot& s = slot(slot_id);
  std::unique_lock lock(s.mu);
  if (s.session && !s.session->closed()) {
    s.session->close(static_cast<util::SimTime>(end_time));
  }
  return conn.send_frame(FrameType::kCloseAck, {});
}

bool ShardServer::handle_health(TcpConn& conn) {
  std::uint8_t worst = 0;
  std::uint32_t hosted = 0;
  {
    std::lock_guard lock(slots_mu_);
    for (const auto& [id, s] : slots_) {
      if (s->released) continue;
      ++hosted;
      // Sampling health without the slot lock is fine: health() is
      // thread-safe by contract.
      if (s->session) {
        auto state = static_cast<std::uint8_t>(
            static_cast<int>(s->session->health().state));
        worst = std::max(worst, state);
      }
    }
  }
  net::BufWriter ack;
  ack.u32(hosted);
  ack.u8(worst);
  return conn.send_frame(FrameType::kHealthAck, ack.data());
}

bool ShardServer::handle_handoff_fetch(TcpConn& conn,
                                       const std::vector<std::uint8_t>& body) {
  net::BufReader r(body);
  std::uint32_t slot_id = r.u32();
  if (!r.ok() || !r.at_end()) {
    return send_error(conn, "malformed HANDOFF_FETCH");
  }
  Slot& s = slot(slot_id);
  std::unique_lock lock(s.mu);
  if (!s.session) return send_error(conn, "HANDOFF_FETCH on an empty slot");
  std::vector<HandoffFile> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(slot_dir(slot_id), ec)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) return send_error(conn, "unreadable slot file");
    HandoffFile f;
    f.name = entry.path().filename().string();
    f.bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    files.push_back(std::move(f));
  }
  if (ec) return send_error(conn, "unreadable slot directory");
  net::BufWriter out;
  encode_files(files, out);
  return conn.send_frame(FrameType::kHandoffState, out.data());
}

bool ShardServer::handle_handoff_install(
    TcpConn& conn, const std::vector<std::uint8_t>& body) {
  net::BufReader r(body);
  std::uint32_t slot_id = r.u32();
  if (!r.ok()) return send_error(conn, "malformed HANDOFF_INSTALL");
  auto files = decode_files(r);
  if (!files || !r.at_end()) {
    return send_error(conn, "malformed HANDOFF_INSTALL file set");
  }
  Slot& s = slot(slot_id);
  std::unique_lock lock(s.mu);
  if (s.session) {
    return send_error(conn, "HANDOFF_INSTALL onto a live slot");
  }
  // A released (or stale) replica's directory must not leak files into
  // the installed state.
  const std::string dir = slot_dir(slot_id);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  if (ec) return send_error(conn, "could not create slot directory");
  for (const auto& f : *files) {
    std::ofstream out(dir + "/" + f.name, std::ios::binary);
    if (!out) return send_error(conn, "could not write slot file");
    out.write(reinterpret_cast<const char*>(f.bytes.data()),
              static_cast<std::streamsize>(f.bytes.size()));
    if (!out) return send_error(conn, "short write installing slot file");
  }
  s.released = false;
  open_slot_session_locked(s, slot_id);
  net::BufWriter ack;
  ack.u8(1);
  ack.u32(static_cast<std::uint32_t>(config_.num_producers));
  for (std::size_t p = 0; p < config_.num_producers; ++p) {
    ack.u64(s.accepted[p]);
  }
  return conn.send_frame(FrameType::kHandoffAck, ack.data());
}

bool ShardServer::handle_release(TcpConn& conn,
                                 const std::vector<std::uint8_t>& body) {
  net::BufReader r(body);
  std::uint32_t slot_id = r.u32();
  if (!r.ok() || !r.at_end()) return send_error(conn, "malformed RELEASE");
  Slot& s = slot(slot_id);
  std::unique_lock lock(s.mu);
  s.session.reset();
  s.released = true;
  for (std::size_t p = 0; p < config_.num_producers; ++p) {
    s.accepted[p] = 0;
    s.durable[p] = 0;
  }
  return conn.send_frame(FrameType::kReleaseAck, {});
}

}  // namespace bgpbh::fabric
