// FileOps: the indirection between SegmentWriter and the C file API.
//
// The base class IS the real implementation (fwrite/fflush/fsync);
// fault::FaultyFileOps overrides it to inject EIO / ENOSPC / short
// writes on a deterministic schedule, which is how the recovery paths
// in SegmentWriter and SpillWriter are exercised without a real bad
// disk.  Only the buffered-write / flush / sync calls go through the
// seam — open/close/remove stay direct, because the failure modes
// worth testing are the ones that can tear or lose acked data.
//
// Cost when injection is off: one virtual call per *chunk-sized*
// write on the spill writer thread — nothing on the ingest hot path.
#pragma once

#include <cstddef>
#include <cstdio>

namespace bgpbh::storage {

class FileOps {
 public:
  virtual ~FileOps() = default;

  // fwrite(): bytes actually written; == `bytes` on success.  On
  // failure errno describes the cause.
  virtual std::size_t write(const void* data, std::size_t bytes,
                            std::FILE* file);

  // fflush(): true on success.
  virtual bool flush(std::FILE* file);

  // fsync(): true on success.
  virtual bool sync(int fd);
};

// The shared pass-through instance used when SegmentConfig::file_ops
// is null.
FileOps& real_file_ops();

}  // namespace bgpbh::storage
