#include "storage/segment_reader.h"

#include <algorithm>
#include <filesystem>

#include "storage/record_codec.h"

namespace bgpbh::storage {

namespace fs = std::filesystem;

namespace {

// Reads [offset, offset + len) into `out`; false on seek/short read.
bool read_range(std::FILE* f, std::uint64_t offset, std::size_t len,
                std::vector<std::uint8_t>& out) {
  out.resize(len);
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) return false;
  return len == 0 || std::fread(out.data(), 1, len, f) == len;
}

}  // namespace

SegmentReader::~SegmentReader() {
  if (file_) std::fclose(file_);
}

std::unique_ptr<SegmentReader> SegmentReader::open(const std::string& path) {
  auto reader = std::unique_ptr<SegmentReader>(new SegmentReader());
  reader->path_ = path;
  reader->file_ = std::fopen(path.c_str(), "rb");
  if (!reader->file_) return nullptr;
  std::FILE* f = reader->file_;
  if (std::fseek(f, 0, SEEK_END) != 0) return nullptr;
  long ssize = std::ftell(f);
  if (ssize < 0) return nullptr;
  std::uint64_t file_bytes = static_cast<std::uint64_t>(ssize);
  std::vector<std::uint8_t> buf;
  if (file_bytes < kSegmentHeaderBytes ||
      !read_range(f, 0, kSegmentHeaderBytes, buf) ||
      !check_segment_header(buf)) {
    return nullptr;
  }
  SegmentMeta& meta = reader->meta_;
  meta.seq = parse_segment_seq(fs::path(path).filename().string());
  meta.file_bytes = file_bytes;

  // Sealed segment: trailer -> footer payload -> index, and we're done
  // having read only O(index) bytes.
  if (file_bytes >= kSegmentHeaderBytes + kTrailerBytes &&
      read_range(f, file_bytes - kTrailerBytes, kTrailerBytes, buf)) {
    if (auto trailer = parse_trailer(buf)) {
      std::uint64_t max_payload =
          file_bytes - kSegmentHeaderBytes - kTrailerBytes;
      if (trailer->payload_len <= max_payload &&
          read_range(f, file_bytes - kTrailerBytes - trailer->payload_len,
                     trailer->payload_len, buf) &&
          parse_footer_payload(buf, trailer->payload_crc, meta)) {
        reader->data_end_ =
            file_bytes - kTrailerBytes - trailer->payload_len;
        return reader;
      }
    }
  }

  // Unsealed (torn) segment: scan the intact record prefix and rebuild
  // the sparse index.  The scan buffer is transient — released as soon
  // as open() returns; only the rebuilt index is kept.
  meta = SegmentMeta{};
  meta.seq = parse_segment_seq(fs::path(path).filename().string());
  meta.file_bytes = file_bytes;
  meta.sealed = false;
  if (!read_range(f, kSegmentHeaderBytes, file_bytes - kSegmentHeaderBytes,
                  buf)) {
    return nullptr;
  }
  std::uint64_t offset = 0;  // relative to the record region
  IndexEntry block;
  constexpr std::size_t kRebuildBlockRecords = 64;
  while (offset < buf.size()) {
    net::BufReader attempt(std::span<const std::uint8_t>(buf).subspan(
        static_cast<std::size_t>(offset)));
    auto event = decode_record(attempt);
    if (!event) break;  // first torn byte: everything after is the tail
    if (block.records == 0) {
      block.offset = kSegmentHeaderBytes + offset;
      block.min_start = event->start;
      block.max_end = event->end;
    } else {
      block.min_start = std::min(block.min_start, event->start);
      block.max_end = std::max(block.max_end, event->end);
    }
    ++block.records;
    if (meta.record_count == 0) {
      meta.min_start = event->start;
      meta.max_end = event->end;
    } else {
      meta.min_start = std::min(meta.min_start, event->start);
      meta.max_end = std::max(meta.max_end, event->end);
    }
    ++meta.record_count;
    if (block.records == kRebuildBlockRecords) {
      meta.index.push_back(block);
      block = IndexEntry{};
    }
    offset += attempt.pos();
  }
  if (block.records > 0) meta.index.push_back(block);
  reader->data_end_ = kSegmentHeaderBytes + offset;
  return reader;
}

void SegmentReader::decode_block_locked(
    std::size_t i,
    const std::function<void(const core::PeerEvent&)>& fn) const {
  const IndexEntry& entry = meta_.index[i];
  std::uint64_t end = block_end(i);
  if (end <= entry.offset ||
      !read_range(file_, entry.offset,
                  static_cast<std::size_t>(end - entry.offset), block_)) {
    ++decode_errors_;
    return;
  }
  net::BufReader r(block_);
  for (std::uint32_t k = 0; k < entry.records; ++k) {
    auto event = decode_record(r);
    if (!event) {
      // Only reachable when a sealed segment's data region rotted
      // after sealing: the index says a record is here but it no
      // longer frames.  Serve what decodes, count the loss.
      ++decode_errors_;
      return;
    }
    fn(*event);
  }
}

void SegmentReader::for_each(
    const std::function<void(const core::PeerEvent&)>& fn) const {
  std::lock_guard<std::mutex> lock(io_mu_);
  for (std::size_t i = 0; i < meta_.index.size(); ++i) {
    decode_block_locked(i, fn);
  }
}

std::vector<core::PeerEvent> SegmentReader::events() const {
  std::vector<core::PeerEvent> out;
  out.reserve(meta_.record_count);
  for_each([&out](const core::PeerEvent& e) { out.push_back(e); });
  return out;
}

void SegmentReader::query(
    const std::function<bool(const core::PeerEvent&)>& pred,
    std::vector<core::PeerEvent>& out) const {
  for_each([&](const core::PeerEvent& e) {
    if (!pred || pred(e)) out.push_back(e);
  });
}

void SegmentReader::events_in(util::SimTime t0, util::SimTime t1,
                              std::vector<core::PeerEvent>& out) const {
  std::lock_guard<std::mutex> lock(io_mu_);
  last_scan_blocks_decoded_ = 0;
  // Footer summary first: skip the whole segment when its [min_start,
  // max_end] envelope misses the window.
  if (meta_.record_count == 0 ||
      !core::overlaps_window(meta_.min_start, meta_.max_end, t0, t1)) {
    return;
  }
  for (std::size_t i = 0; i < meta_.index.size(); ++i) {
    const IndexEntry& entry = meta_.index[i];
    if (!core::overlaps_window(entry.min_start, entry.max_end, t0, t1)) {
      continue;  // index seek: the whole block misses the window
    }
    ++last_scan_blocks_decoded_;
    decode_block_locked(i, [&](const core::PeerEvent& e) {
      if (core::overlaps_window(e.start, e.end, t0, t1)) out.push_back(e);
    });
  }
}

std::unique_ptr<SegmentSet> SegmentSet::open(const std::string& dir) {
  auto set = std::unique_ptr<SegmentSet>(new SegmentSet());
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return set;  // nothing yet: empty set
  std::vector<std::pair<std::uint64_t, std::string>> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    std::uint64_t seq = parse_segment_seq(entry.path().filename().string());
    if (seq != 0) files.emplace_back(seq, entry.path().string());
  }
  std::sort(files.begin(), files.end());
  for (const auto& [seq, path] : files) {
    auto reader = SegmentReader::open(path);
    if (reader) {
      set->segments_.push_back(std::move(reader));
    } else {
      ++set->skipped_files_;
    }
  }
  return set;
}

std::size_t SegmentSet::size() const {
  std::size_t total = 0;
  for (const auto& seg : segments_) total += seg->meta().record_count;
  return total;
}

std::uint64_t SegmentSet::bytes_on_disk() const {
  std::uint64_t total = 0;
  for (const auto& seg : segments_) total += seg->meta().file_bytes;
  return total;
}

void SegmentSet::for_each(
    const std::function<void(const core::PeerEvent&)>& fn) const {
  for (const auto& seg : segments_) seg->for_each(fn);
}

std::vector<core::PeerEvent> SegmentSet::events() const {
  std::vector<core::PeerEvent> out;
  out.reserve(size());
  for_each([&out](const core::PeerEvent& e) { out.push_back(e); });
  return out;
}

std::vector<core::PeerEvent> SegmentSet::query(
    const std::function<bool(const core::PeerEvent&)>& pred) const {
  std::vector<core::PeerEvent> out;
  for (const auto& seg : segments_) seg->query(pred, out);
  return out;
}

std::size_t SegmentSet::count(
    const std::function<bool(const core::PeerEvent&)>& pred) const {
  std::size_t n = 0;
  for_each([&](const core::PeerEvent& e) {
    if (!pred || pred(e)) ++n;
  });
  return n;
}

std::vector<core::PeerEvent> SegmentSet::events_in(util::SimTime t0,
                                                   util::SimTime t1) const {
  std::vector<core::PeerEvent> out;
  // Each reader skips itself via its footer summary, then seeks via
  // its sparse index.
  for (const auto& seg : segments_) seg->events_in(t0, t1, out);
  return out;
}

}  // namespace bgpbh::storage
