// Crash recovery for segment files: truncate the torn tail, rebuild
// the index from intact records, reseal in place.
//
// A writer that dies mid-append leaves its active segment without a
// footer and possibly with a partial record at the end.  recover_
// segment() scans the intact record prefix (every record is CRC-
// framed, so the first torn byte is detected deterministically),
// truncates the file to the end of the last intact record, and writes
// a fresh footer + trailer built from the rebuilt index — after which
// the segment is indistinguishable from one sealed normally, and
// exactly the acked prefix of what was appended survives, byte-wise.
//
// SegmentWriter::open runs this on every unsealed segment it finds, so
// simply reopening a store directory heals it; SegmentReader tolerates
// torn tails read-only for callers that must not mutate (kReopen on a
// directory another process owns).
#pragma once

#include <string>

#include "storage/format.h"

namespace bgpbh::storage {

struct RecoveryResult {
  bool ok = false;          // file is a readable segment, sealed on return
  bool was_sealed = false;  // footer was already valid; file untouched
  std::uint32_t records = 0;            // intact records kept
  std::uint64_t truncated_bytes = 0;    // torn tail removed
  SegmentMeta meta;                     // valid when ok
};

// Recovers one segment file in place (no-op when already sealed).
RecoveryResult recover_segment(const std::string& path);

}  // namespace bgpbh::storage
