#include "storage/record_codec.h"

#include <algorithm>

#include "storage/format.h"
#include "storage/wire.h"

namespace bgpbh::storage {

void encode_ip(const net::IpAddr& ip, net::BufWriter& out) {
  if (ip.is_v4()) {
    out.u8(4);
    out.u32(ip.v4().value());
  } else {
    out.u8(6);
    out.bytes(ip.v6().bytes());
  }
}

std::optional<net::IpAddr> decode_ip(net::BufReader& in) {
  switch (in.u8()) {
    case 4:
      return net::IpAddr(net::Ipv4Addr(in.u32()));
    case 6: {
      auto raw = in.bytes(16);
      if (raw.size() != 16) return std::nullopt;
      net::Ipv6Addr::Bytes bytes;
      std::copy(raw.begin(), raw.end(), bytes.begin());
      return net::IpAddr(net::Ipv6Addr(bytes));
    }
    default:
      return std::nullopt;
  }
}

void encode_prefix(const net::Prefix& prefix, net::BufWriter& out) {
  encode_ip(prefix.addr(), out);
  out.u8(prefix.len());
}

std::optional<net::Prefix> decode_prefix(net::BufReader& in) {
  auto addr = decode_ip(in);
  if (!addr) return std::nullopt;
  std::uint8_t len = in.u8();
  if (!in.ok() || len > addr->max_len()) return std::nullopt;
  net::Prefix prefix(*addr, len);
  // Non-canonical prefixes (host bits set past the length) never come
  // from our encoder; reject them so decode(encode(x)) == x is the
  // ONLY way a prefix round-trips.
  if (prefix.addr() != *addr) return std::nullopt;
  return prefix;
}

namespace {

constexpr std::uint8_t kFlagOpen = 1u << 0;
constexpr std::uint8_t kFlagExplicitWithdrawal = 1u << 1;
constexpr std::uint8_t kFlagTableDumpStart = 1u << 2;
constexpr std::uint8_t kKnownFlags =
    kFlagOpen | kFlagExplicitWithdrawal | kFlagTableDumpStart;

}  // namespace

void encode_event_payload(const core::PeerEvent& event, net::BufWriter& out) {
  out.u8(static_cast<std::uint8_t>(event.platform));
  encode_ip(event.peer.peer_ip, out);
  out.u32(event.peer.peer_asn);
  encode_ip(event.prefix.addr(), out);
  out.u8(event.prefix.len());
  out.u8(event.provider.is_ixp ? 1 : 0);
  out.u32(event.provider.asn);
  out.u32(event.provider.ixp_id);
  out.u32(event.user);
  out.u8(static_cast<std::uint8_t>(event.kind));
  out.u32(static_cast<std::uint32_t>(event.as_distance));
  out.u64(static_cast<std::uint64_t>(event.start));
  out.u64(static_cast<std::uint64_t>(event.end));
  std::uint8_t flags = 0;
  if (event.open) flags |= kFlagOpen;
  if (event.explicit_withdrawal) flags |= kFlagExplicitWithdrawal;
  if (event.started_in_table_dump) flags |= kFlagTableDumpStart;
  out.u8(flags);
  out.u16(static_cast<std::uint16_t>(event.communities.classic().size()));
  for (const auto& c : event.communities.classic()) out.u32(c.raw());
  out.u16(static_cast<std::uint16_t>(event.communities.large().size()));
  for (const auto& l : event.communities.large()) {
    out.u32(l.global_admin());
    out.u32(l.local1());
    out.u32(l.local2());
  }
}

std::optional<core::PeerEvent> decode_event_payload(net::BufReader& in) {
  core::PeerEvent event;
  std::uint8_t platform = in.u8();
  if (platform >= routing::kNumPlatforms) return std::nullopt;
  event.platform = static_cast<routing::Platform>(platform);
  auto peer_ip = decode_ip(in);
  if (!peer_ip) return std::nullopt;
  event.peer.peer_ip = *peer_ip;
  event.peer.peer_asn = in.u32();
  auto prefix_addr = decode_ip(in);
  if (!prefix_addr) return std::nullopt;
  std::uint8_t prefix_len = in.u8();
  if (prefix_len > prefix_addr->max_len()) return std::nullopt;
  net::Prefix prefix(*prefix_addr, prefix_len);
  // Non-canonical prefixes (host bits set past the length) never come
  // from our encoder; reject them so decode(encode(x)) == x is the
  // ONLY way a record round-trips.
  if (prefix.addr() != *prefix_addr) return std::nullopt;
  event.prefix = prefix;
  std::uint8_t is_ixp = in.u8();
  if (is_ixp > 1) return std::nullopt;
  event.provider.is_ixp = is_ixp != 0;
  event.provider.asn = in.u32();
  event.provider.ixp_id = in.u32();
  event.user = in.u32();
  std::uint8_t kind = in.u8();
  if (kind > static_cast<std::uint8_t>(core::DetectionKind::kIxpPeerIp)) {
    return std::nullopt;
  }
  event.kind = static_cast<core::DetectionKind>(kind);
  event.as_distance = static_cast<std::int32_t>(in.u32());
  event.start = static_cast<util::SimTime>(in.u64());
  event.end = static_cast<util::SimTime>(in.u64());
  std::uint8_t flags = in.u8();
  if ((flags & ~kKnownFlags) != 0) return std::nullopt;
  event.open = (flags & kFlagOpen) != 0;
  event.explicit_withdrawal = (flags & kFlagExplicitWithdrawal) != 0;
  event.started_in_table_dump = (flags & kFlagTableDumpStart) != 0;
  std::uint16_t n_classic = in.u16();
  if (std::size_t{n_classic} * 4 > in.remaining()) return std::nullopt;
  for (std::uint16_t i = 0; i < n_classic; ++i) {
    event.communities.add(bgp::Community(in.u32()));
  }
  std::uint16_t n_large = in.u16();
  if (std::size_t{n_large} * 12 > in.remaining()) return std::nullopt;
  for (std::uint16_t i = 0; i < n_large; ++i) {
    std::uint32_t global = in.u32(), l1 = in.u32(), l2 = in.u32();
    event.communities.add(bgp::LargeCommunity(global, l1, l2));
  }
  if (!in.ok()) return std::nullopt;
  return event;
}

void encode_record(const core::PeerEvent& event, net::BufWriter& out) {
  net::BufWriter payload;
  encode_event_payload(event, payload);
  wire::encode_frame(out, kRecordMagic, kRecordVersion, payload.data());
}

std::optional<core::PeerEvent> decode_record(net::BufReader& in) {
  auto frame = wire::decode_frame(in, kRecordMagic, kRecordVersion,
                                  kRecordVersion, kMaxRecordPayload);
  if (!frame) return std::nullopt;
  net::BufReader body(frame->payload);
  auto event = decode_event_payload(body);
  // Trailing payload bytes mean the length field and the payload
  // disagree — a framing bug, not a valid record.
  if (!event || !body.ok() || !body.at_end()) return std::nullopt;
  return event;
}

std::size_t encoded_record_size(const core::PeerEvent& event) {
  std::size_t payload = 1 +                                  // platform
                        (event.peer.peer_ip.is_v4() ? 5 : 17) + 4 +
                        (event.prefix.is_v4() ? 5 : 17) + 1 +
                        (1 + 4 + 4) +                        // provider
                        4 + 1 + 4 + 8 + 8 + 1 +  // user..flags
                        2 + 4 * event.communities.classic().size() +
                        2 + 12 * event.communities.large().size();
  return payload + kRecordOverheadBytes;
}

}  // namespace bgpbh::storage
