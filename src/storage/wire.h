// Shared wire framing: the length-prefixed, versioned, CRC-checked
// frame used by both the on-disk record codec (record_codec.cc) and
// the fabric TCP protocol (src/fabric/protocol.h).
//
//   u16 magic | u8 version | u32 payload_len | payload | u32 crc
//
// with crc = crc32(version byte ++ payload).  Keeping one encoder
// guarantees the segment log and the socket protocol can never drift:
// a fabric APPEND payload is byte-identical to the record payload the
// receiving shard spills to disk.
//
// Frames carry a version byte so independently-deployed peers can
// negotiate: each side advertises [min, max] readable versions and
// both speak the highest common one (negotiate_version).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/bytes.h"
#include "util/crc32.h"

namespace bgpbh::storage::wire {

// magic(2) + version(1) + payload_len(4) ... crc(4).
inline constexpr std::size_t kFrameOverheadBytes = 11;

struct Frame {
  std::uint8_t version = 0;
  std::span<const std::uint8_t> payload;
};

// Appends one framed payload.  The CRC covers the version byte and the
// payload, so a frame truncated or bit-flipped anywhere past the magic
// fails verification.
inline void encode_frame(net::BufWriter& out, std::uint16_t magic,
                         std::uint8_t version,
                         std::span<const std::uint8_t> payload) {
  out.u16(magic);
  out.u8(version);
  out.u32(static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = util::crc32(std::span(&version, 1));
  crc = util::crc32(payload, crc);
  out.bytes(payload);
  out.u32(crc);
}

// Decodes one frame, advancing `in` past it on success.  Rejects bad
// magic, versions outside [min_version, max_version], payloads larger
// than `max_payload` (so a corrupt length field can never drive a
// giant allocation), truncation, and CRC mismatch.  On failure the
// reader position is unspecified — callers resync by re-seeking.
inline std::optional<Frame> decode_frame(net::BufReader& in,
                                         std::uint16_t magic,
                                         std::uint8_t min_version,
                                         std::uint8_t max_version,
                                         std::uint32_t max_payload) {
  if (in.u16() != magic) return std::nullopt;
  std::uint8_t version = in.u8();
  std::uint32_t payload_len = in.u32();
  if (!in.ok() || version < min_version || version > max_version ||
      payload_len > max_payload) {
    return std::nullopt;
  }
  auto payload = in.bytes(payload_len);
  std::uint32_t crc = in.u32();
  if (!in.ok()) return std::nullopt;
  std::uint32_t expect = util::crc32(std::span(&version, 1));
  expect = util::crc32(payload, expect);
  if (crc != expect) return std::nullopt;
  return Frame{version, payload};
}

// Highest version both sides can speak, or nullopt when the ranges
// are disjoint (peers too far apart to talk).
inline std::optional<std::uint8_t> negotiate_version(std::uint8_t a_min,
                                                     std::uint8_t a_max,
                                                     std::uint8_t b_min,
                                                     std::uint8_t b_max) {
  std::uint8_t lo = a_min > b_min ? a_min : b_min;
  std::uint8_t hi = a_max < b_max ? a_max : b_max;
  if (lo > hi) return std::nullopt;
  return hi;
}

}  // namespace bgpbh::storage::wire
