#include "storage/spill.h"

#include "telemetry/trace.h"

namespace bgpbh::storage {

std::unique_ptr<SpillWriter> SpillWriter::open(SpillConfig config) {
  auto writer = SegmentWriter::open(config.dir, config.segment);
  if (!writer) return nullptr;
  if (config.queue_chunks == 0) config.queue_chunks = 1;
  return std::unique_ptr<SpillWriter>(
      new SpillWriter(std::move(config), std::move(writer)));
}

SpillWriter::SpillWriter(SpillConfig config,
                         std::unique_ptr<SegmentWriter> writer)
    : config_(std::move(config)), writer_(std::move(writer)) {
  if (telemetry::MetricsRegistry* metrics = config_.metrics) {
    metrics->describe("storage.spill.append_ns",
                      "Segment append latency per spilled chunk (ns, writer "
                      "thread)");
    metrics->describe("storage.spill.sync_ns",
                      "fsync latency per drain batch (ns, writer thread)");
    metrics->describe("storage.spill.queue_chunks",
                      "Chunks waiting for the spill writer thread");
    metrics->describe("storage.spill.events_spilled",
                      "Events durably appended (acked prefix)");
    metrics->describe("storage.spill.segments_sealed",
                      "Segments sealed by size/age roll");
    metrics->describe("storage.spill.segments_retired",
                      "Segments deleted by the retention policy");
    metrics->describe("storage.spill.bytes_on_disk",
                      "Bytes currently held by live segments");
    append_hist_ = &metrics->histogram("storage.spill.append_ns");
    sync_hist_ = &metrics->histogram("storage.spill.sync_ns");
    spilled_ctr_ = &metrics->counter("storage.spill.events_spilled");
    sealed_ctr_ = &metrics->counter("storage.spill.segments_sealed");
    retired_ctr_ = &metrics->counter("storage.spill.segments_retired");
    queue_gauge_ = &metrics->gauge("storage.spill.queue_chunks");
    bytes_gauge_ = &metrics->gauge("storage.spill.bytes_on_disk");
    // Recovery may have found pre-existing segments; seed the mirrors
    // before the writer thread takes ownership of the counters.
    sealed_mirror_.store(writer_->segments_sealed(),
                         std::memory_order_relaxed);
    retired_mirror_.store(writer_->segments_retired(),
                          std::memory_order_relaxed);
    bytes_mirror_.store(writer_->bytes_on_disk(), std::memory_order_relaxed);
    hook_id_ = metrics->add_collection_hook([this] {
      spilled_ctr_->set_total(events_spilled_.load(std::memory_order_relaxed));
      sealed_ctr_->set_total(sealed_mirror_.load(std::memory_order_relaxed));
      retired_ctr_->set_total(retired_mirror_.load(std::memory_order_relaxed));
      bytes_gauge_->set(static_cast<double>(
          bytes_mirror_.load(std::memory_order_relaxed)));
      std::size_t depth;
      {
        std::lock_guard<std::mutex> lock(mu_);
        depth = queue_.size();
      }
      queue_gauge_->set(static_cast<double>(depth));
    });
  }
  thread_ = std::thread([this] { run(); });
}

SpillWriter::~SpillWriter() {
  if (config_.metrics) config_.metrics->remove_collection_hook(hook_id_);
  stop();
}

bool SpillWriter::submit(std::vector<core::PeerEvent> chunk) {
  if (chunk.empty()) return true;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return queue_.size() < config_.queue_chunks || stopping_;
    });
    if (stopping_) return false;
    queue_.push_back(std::move(chunk));
  }
  not_empty_.notify_one();
  return true;
}

void SpillWriter::run() {
  for (;;) {
    std::vector<std::vector<core::PeerEvent>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;
      // Take the whole backlog in one go: one sync() per drain, and
      // the producers see a fully empty queue immediately.
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    not_full_.notify_all();
    // Count only events whose append AND the batch's sync succeeded —
    // events_spilled() is a durability gauge, so it must never exceed
    // what recovery would hand back (under-counting a completed chunk
    // whose batch-mate failed is the conservative error).
    bool ok = true;
    std::uint64_t appended = 0;
    telemetry::TraceRing* ring =
        config_.metrics ? &config_.metrics->trace() : nullptr;
    for (const auto& chunk : batch) {
      telemetry::ScopedSpan span(append_hist_, ring, "spill.append");
      if (writer_->append(std::span(chunk))) {
        appended += chunk.size();
      } else {
        ok = false;
      }
    }
    {
      telemetry::ScopedSpan span(sync_hist_, ring, "spill.sync");
      if (!writer_->sync()) ok = false;
    }
    if (ok) {
      events_spilled_.fetch_add(appended, std::memory_order_relaxed);
    } else {
      io_error_.store(true, std::memory_order_relaxed);
    }
    if (config_.metrics) {
      // Republish the SegmentWriter's plain counters (writer-thread
      // owned) for the collection hook.
      sealed_mirror_.store(writer_->segments_sealed(),
                           std::memory_order_relaxed);
      retired_mirror_.store(writer_->segments_retired(),
                            std::memory_order_relaxed);
      bytes_mirror_.store(writer_->bytes_on_disk(), std::memory_order_relaxed);
    }
  }
}

void SpillWriter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // Serialize concurrent stop() callers past the join + seal.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (thread_.joinable()) thread_.join();
  if (!joined_) {
    joined_ = true;
    if (!writer_->close()) io_error_.store(true, std::memory_order_relaxed);
  }
}

}  // namespace bgpbh::storage
