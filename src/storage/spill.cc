#include "storage/spill.h"

#include <cstring>

#include "telemetry/trace.h"
#include "util/log.h"

namespace bgpbh::storage {

std::unique_ptr<SpillWriter> SpillWriter::open(SpillConfig config) {
  auto writer = SegmentWriter::open(config.dir, config.segment);
  if (!writer) return nullptr;
  if (config.queue_chunks == 0) config.queue_chunks = 1;
  return std::unique_ptr<SpillWriter>(
      new SpillWriter(std::move(config), std::move(writer)));
}

SpillWriter::SpillWriter(SpillConfig config,
                         std::unique_ptr<SegmentWriter> writer)
    : config_(std::move(config)), writer_(std::move(writer)) {
  if (telemetry::MetricsRegistry* metrics = config_.metrics) {
    metrics->describe("storage.spill.append_ns",
                      "Segment append latency per spilled chunk (ns, writer "
                      "thread)");
    metrics->describe("storage.spill.sync_ns",
                      "fsync latency per drain batch (ns, writer thread)");
    metrics->describe("storage.spill.queue_chunks",
                      "Chunks waiting for the spill writer thread");
    metrics->describe("storage.spill.events_spilled",
                      "Events durably appended (acked prefix)");
    metrics->describe("storage.spill.segments_sealed",
                      "Segments sealed by size/age roll");
    metrics->describe("storage.spill.segments_retired",
                      "Segments deleted by the retention policy");
    metrics->describe("storage.spill.bytes_on_disk",
                      "Bytes currently held by live segments");
    metrics->describe("storage.spill.degraded",
                      "Spill health: 0 ok, 1 degraded (memory-only), 2 failed "
                      "(events lost)");
    metrics->describe("storage.spill.parked_events",
                      "Events parked in memory awaiting a probe write");
    metrics->describe("storage.spill.events_lost",
                      "Parked events dropped because the disk fault persisted "
                      "through stop()");
    metrics->describe("storage.spill.retries",
                      "Write attempts beyond each first try (backoff retries "
                      "+ degraded-mode probes)");
    metrics->describe("storage.spill.degraded_entered",
                      "Times the writer fell into degraded mode");
    append_hist_ = &metrics->histogram("storage.spill.append_ns");
    sync_hist_ = &metrics->histogram("storage.spill.sync_ns");
    spilled_ctr_ = &metrics->counter("storage.spill.events_spilled");
    sealed_ctr_ = &metrics->counter("storage.spill.segments_sealed");
    retired_ctr_ = &metrics->counter("storage.spill.segments_retired");
    lost_ctr_ = &metrics->counter("storage.spill.events_lost");
    retries_ctr_ = &metrics->counter("storage.spill.retries");
    degraded_entered_ctr_ = &metrics->counter("storage.spill.degraded_entered");
    queue_gauge_ = &metrics->gauge("storage.spill.queue_chunks");
    bytes_gauge_ = &metrics->gauge("storage.spill.bytes_on_disk");
    degraded_gauge_ = &metrics->gauge("storage.spill.degraded");
    parked_gauge_ = &metrics->gauge("storage.spill.parked_events");
    // Recovery may have found pre-existing segments; seed the mirrors
    // before the writer thread takes ownership of the counters.
    sealed_mirror_.store(writer_->segments_sealed(),
                         std::memory_order_relaxed);
    retired_mirror_.store(writer_->segments_retired(),
                          std::memory_order_relaxed);
    bytes_mirror_.store(writer_->bytes_on_disk(), std::memory_order_relaxed);
    hook_id_ = metrics->add_collection_hook([this] {
      spilled_ctr_->set_total(events_spilled_.load(std::memory_order_relaxed));
      sealed_ctr_->set_total(sealed_mirror_.load(std::memory_order_relaxed));
      retired_ctr_->set_total(retired_mirror_.load(std::memory_order_relaxed));
      lost_ctr_->set_total(lost_events_.load(std::memory_order_relaxed));
      retries_ctr_->set_total(retries_.load(std::memory_order_relaxed));
      degraded_entered_ctr_->set_total(
          degraded_entered_.load(std::memory_order_relaxed));
      bytes_gauge_->set(static_cast<double>(
          bytes_mirror_.load(std::memory_order_relaxed)));
      degraded_gauge_->set(static_cast<double>(
          static_cast<int>(state_.load(std::memory_order_relaxed))));
      parked_gauge_->set(static_cast<double>(
          parked_events_.load(std::memory_order_relaxed)));
      std::size_t depth;
      {
        std::lock_guard<std::mutex> lock(mu_);
        depth = queue_.size();
      }
      queue_gauge_->set(static_cast<double>(depth));
    });
  }
  thread_ = std::thread([this] { run(); });
}

SpillWriter::~SpillWriter() {
  if (config_.metrics) config_.metrics->remove_collection_hook(hook_id_);
  stop();
}

bool SpillWriter::submit(std::vector<core::PeerEvent> chunk) {
  if (chunk.empty()) return true;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return queue_.size() < config_.queue_chunks || stopping_;
    });
    if (stopping_) return false;
    queue_.push_back(Item{std::move(chunk), nullptr});
  }
  not_empty_.notify_one();
  return true;
}

bool SpillWriter::barrier(BarrierResult& result) {
  BarrierTicket ticket;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return queue_.size() < config_.queue_chunks || stopping_;
    });
    if (stopping_) return false;
    queue_.push_back(Item{{}, &ticket});
  }
  not_empty_.notify_one();
  std::unique_lock<std::mutex> lock(ticket.m);
  ticket.cv.wait(lock, [&ticket] { return ticket.done; });
  result = ticket.result;
  return true;
}

void SpillWriter::run() {
  for (;;) {
    std::vector<Item> incoming;
    bool final_drain = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (degraded_ && !parked_.empty()) {
        // Degraded: wake at the probe deadline even with no new
        // chunks, so spilling re-arms without fresh traffic.
        not_empty_.wait_until(lock, next_probe_, [this] {
          return !queue_.empty() || stopping_;
        });
      } else {
        not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      }
      while (!queue_.empty()) {
        incoming.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      final_drain = stopping_;
    }
    not_full_.notify_all();
    writer_->set_retention_floor(
        retention_floor_.load(std::memory_order_relaxed));
    for (auto& item : incoming) {
      if (!item.ticket) {
        parked_.push_back(std::move(item.chunk));
        continue;
      }
      // Barrier: land everything submitted before it, then report the
      // durable position.  A fault that keeps backlog parked (or a
      // degraded probe window) yields ok = false — the checkpoint is
      // abandoned, never stamped with a position it doesn't cover.
      process(/*final_drain=*/false);
      BarrierResult r;
      r.ok = parked_.empty() && !degraded_;
      r.pos = writer_->durable_pos();
      {
        std::lock_guard<std::mutex> ticket_lock(item.ticket->m);
        item.ticket->result = r;
        item.ticket->done = true;
      }
      item.ticket->cv.notify_all();
    }
    process(final_drain);
    if (final_drain) {
      // Fault persisted through the final attempt: the parked tail is
      // lost, with exact accounting — never silently.
      const std::uint64_t durable =
          writer_->events_committed() - retired_events_;
      std::uint64_t total = 0;
      for (const auto& chunk : parked_) total += chunk.size();
      if (total > durable) {
        const std::uint64_t lost = total - durable;
        lost_events_.fetch_add(lost, std::memory_order_relaxed);
        state_.store(State::kFailed, std::memory_order_relaxed);
        io_error_.store(true, std::memory_order_relaxed);
        util::Log(util::LogLevel::kError, "spill")
            .msg("giving up on parked events; disk fault persisted")
            .kv("events_lost", lost)
            .kv("dir", writer_->dir())
            .kv("errno", writer_->last_errno());
      }
      parked_.clear();
      publish_parked_gauge();
      return;
    }
  }
}

bool SpillWriter::try_write_parked() {
  telemetry::TraceRing* ring =
      config_.metrics ? &config_.metrics->trace() : nullptr;
  // events_committed() only advances at a successful sync/seal, so
  // (committed - retired) is exactly the parked prefix a previous
  // partial attempt already made durable: skip it, append the rest,
  // ack everything with one sync.  Retrying after a failure can never
  // duplicate — the abandoned segment was truncated back to the same
  // watermark.
  const std::uint64_t committed =
      writer_->events_committed() - retired_events_;
  std::uint64_t cum = 0;
  bool ok = true;
  for (const auto& chunk : parked_) {
    const std::uint64_t begin = cum;
    cum += chunk.size();
    if (committed >= cum) continue;  // already durable
    const std::size_t from =
        committed > begin ? static_cast<std::size_t>(committed - begin) : 0;
    telemetry::ScopedSpan span(append_hist_, ring, "spill.append");
    if (!writer_->append(std::span(chunk).subspan(from))) {
      ok = false;
      break;
    }
  }
  if (ok) {
    telemetry::ScopedSpan span(sync_hist_, ring, "spill.sync");
    ok = writer_->sync();
  }
  // Durability gauge: exactly what recovery would hand back, even
  // after a partial batch (a mid-batch seal commits its records).
  events_spilled_.store(writer_->events_committed(),
                        std::memory_order_relaxed);
  if (config_.metrics) {
    sealed_mirror_.store(writer_->segments_sealed(),
                         std::memory_order_relaxed);
    retired_mirror_.store(writer_->segments_retired(),
                          std::memory_order_relaxed);
    bytes_mirror_.store(writer_->bytes_on_disk(), std::memory_order_relaxed);
  }
  if (!ok) return false;
  for (const auto& chunk : parked_) retired_events_ += chunk.size();
  parked_.clear();
  return true;
}

void SpillWriter::process(bool final_drain) {
  if (parked_.empty()) {
    publish_parked_gauge();
    return;
  }
  if (degraded_ && !final_drain &&
      std::chrono::steady_clock::now() < next_probe_) {
    // Not probe time yet: just keep parking.
    publish_parked_gauge();
    return;
  }
  // Normal mode: a full retry ladder with backoff.  Degraded mode: one
  // probe per deadline (the ladder already ran; re-arming needs a
  // single success).  Final drain: no sleeps, but still try.
  const std::size_t attempts = degraded_ ? 1 : config_.retry.attempts();
  bool wrote = false;
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1 || degraded_) {
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
    if (try_write_parked()) {
      wrote = true;
      break;
    }
    if (attempt < attempts && !final_drain) {
      backoff(config_.retry.delay(attempt));
    }
  }
  if (wrote) {
    if (degraded_) {
      degraded_ = false;
      probe_attempt_ = 0;
      state_.store(State::kOk, std::memory_order_relaxed);
      util::Log(util::LogLevel::kInfo, "spill")
          .msg("disk fault cleared; spilling re-armed")
          .kv("dir", writer_->dir())
          .kv("events_spilled",
              events_spilled_.load(std::memory_order_relaxed));
    }
  } else {
    if (!degraded_) {
      degraded_ = true;
      degraded_entered_.fetch_add(1, std::memory_order_relaxed);
      state_.store(State::kDegraded, std::memory_order_relaxed);
      static util::LogRateLimiter limit(/*per_second=*/0.5, /*burst=*/3.0);
      if (limit.allow()) {
        util::Log(util::LogLevel::kWarn, "spill")
            .msg("persistent disk error; degrading to memory-only")
            .kv("dir", writer_->dir())
            .kv("errno", writer_->last_errno())
            .kv("error", std::strerror(writer_->last_errno()))
            .kv("suppressed", limit.last_suppressed());
      }
    }
    ++probe_attempt_;
    next_probe_ = std::chrono::steady_clock::now() +
                  config_.retry.delay(probe_attempt_);
  }
  publish_parked_gauge();
}

void SpillWriter::backoff(std::chrono::nanoseconds delay) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait_for(lock, delay, [this] { return stopping_; });
}

void SpillWriter::publish_parked_gauge() {
  std::uint64_t parked = 0;
  for (const auto& chunk : parked_) parked += chunk.size();
  const std::uint64_t durable = writer_->events_committed() - retired_events_;
  parked_events_.store(parked > durable ? parked - durable : 0,
                       std::memory_order_relaxed);
}

void SpillWriter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // Serialize concurrent stop() callers past the join + seal.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (thread_.joinable()) thread_.join();
  if (!joined_) {
    joined_ = true;
    if (!writer_->close()) io_error_.store(true, std::memory_order_relaxed);
    events_spilled_.store(writer_->events_committed(),
                          std::memory_order_relaxed);
    if (config_.metrics) {
      sealed_mirror_.store(writer_->segments_sealed(),
                           std::memory_order_relaxed);
      retired_mirror_.store(writer_->segments_retired(),
                            std::memory_order_relaxed);
      bytes_mirror_.store(writer_->bytes_on_disk(), std::memory_order_relaxed);
    }
  }
}

}  // namespace bgpbh::storage
