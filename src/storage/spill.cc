#include "storage/spill.h"

namespace bgpbh::storage {

std::unique_ptr<SpillWriter> SpillWriter::open(SpillConfig config) {
  auto writer = SegmentWriter::open(config.dir, config.segment);
  if (!writer) return nullptr;
  if (config.queue_chunks == 0) config.queue_chunks = 1;
  return std::unique_ptr<SpillWriter>(
      new SpillWriter(std::move(config), std::move(writer)));
}

SpillWriter::SpillWriter(SpillConfig config,
                         std::unique_ptr<SegmentWriter> writer)
    : config_(std::move(config)), writer_(std::move(writer)) {
  thread_ = std::thread([this] { run(); });
}

SpillWriter::~SpillWriter() { stop(); }

bool SpillWriter::submit(std::vector<core::PeerEvent> chunk) {
  if (chunk.empty()) return true;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return queue_.size() < config_.queue_chunks || stopping_;
    });
    if (stopping_) return false;
    queue_.push_back(std::move(chunk));
  }
  not_empty_.notify_one();
  return true;
}

void SpillWriter::run() {
  for (;;) {
    std::vector<std::vector<core::PeerEvent>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;
      // Take the whole backlog in one go: one sync() per drain, and
      // the producers see a fully empty queue immediately.
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    not_full_.notify_all();
    // Count only events whose append AND the batch's sync succeeded —
    // events_spilled() is a durability gauge, so it must never exceed
    // what recovery would hand back (under-counting a completed chunk
    // whose batch-mate failed is the conservative error).
    bool ok = true;
    std::uint64_t appended = 0;
    for (const auto& chunk : batch) {
      if (writer_->append(std::span(chunk))) {
        appended += chunk.size();
      } else {
        ok = false;
      }
    }
    if (!writer_->sync()) ok = false;
    if (ok) {
      events_spilled_.fetch_add(appended, std::memory_order_relaxed);
    } else {
      io_error_.store(true, std::memory_order_relaxed);
    }
  }
}

void SpillWriter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // Serialize concurrent stop() callers past the join + seal.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (thread_.joinable()) thread_.join();
  if (!joined_) {
    joined_ = true;
    if (!writer_->close()) io_error_.store(true, std::memory_order_relaxed);
  }
}

}  // namespace bgpbh::storage
