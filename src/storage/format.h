// On-disk format of the persistent event store (src/storage/).
//
// A store directory holds a sequence of append-only *segment* files:
//
//   events-000001.seg
//   events-000002.seg          <- rolled by size / time span
//   events-000003.seg          <- active (footer written at seal time)
//
// Each segment is
//
//   +--------+---------------------------------------+----------------+
//   | header | record, record, record, ...           | footer+trailer |
//   +--------+---------------------------------------+----------------+
//
//   header   8 B   u32 magic "BHSG" | u8 version | 3 B reserved
//   record         u16 magic | u8 version | u32 payload_len |
//                  payload | u32 crc32(version + payload)
//   footer         sparse time index (one entry per block of
//                  `index_block_records` records: file offset, record
//                  count, [min_start, max_end] of the block) + segment
//                  summary (record count, time range)
//   trailer  12 B  u32 footer_len | u32 crc32(footer) | u32 magic
//
// All integers are big-endian (net::BufWriter).  A segment with a
// valid trailer is *sealed*: readers trust its footer and seek
// straight to the index blocks a time-window query overlaps.  A
// segment without one (the writer crashed) is recovered by scanning
// records from the header and truncating at the first torn or
// CRC-failing record — only the unacked tail is ever lost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/bytes.h"
#include "util/time.h"

namespace bgpbh::storage {

// ---- magics & versions ------------------------------------------------

inline constexpr std::uint32_t kSegmentMagic = 0x42485347;  // "BHSG"
inline constexpr std::uint32_t kFooterMagic = 0x42484658;   // "BHFX"
inline constexpr std::uint16_t kRecordMagic = 0xEB1C;
inline constexpr std::uint8_t kFormatVersion = 1;
inline constexpr std::uint8_t kRecordVersion = 1;

inline constexpr std::size_t kSegmentHeaderBytes = 8;
inline constexpr std::size_t kTrailerBytes = 12;
// magic(2) + version(1) + payload_len(4) ... crc(4).
inline constexpr std::size_t kRecordOverheadBytes = 11;

// Decoder hard cap on one record's payload, so a corrupted length
// field can never trigger a giant allocation.
inline constexpr std::uint32_t kMaxRecordPayload = 1u << 20;

// "events-000042.seg".
std::string segment_file_name(std::uint64_t seq);
// Inverse; returns 0 for names that are not segment files (seq starts
// at 1).
std::uint64_t parse_segment_seq(const std::string& file_name);

// ---- sparse time index ------------------------------------------------

// One entry per block of `index_block_records` consecutive records.
// Records inside a segment are in *arrival* order (spill chunks from
// concurrent store lanes interleave), so the index keys each block by
// the [min_start, max_end] envelope of its records: a time-window scan
// decodes only the blocks whose envelope overlaps the window
// (core::overlaps_window) and seeks past the rest.
struct IndexEntry {
  std::uint64_t offset = 0;  // file offset of the block's first record
  std::uint32_t records = 0;
  util::SimTime min_start = 0;
  util::SimTime max_end = 0;
};

// Per-segment summary persisted in the footer (and rebuilt by
// recovery): lets SegmentSet skip whole segments outside the window.
struct SegmentMeta {
  std::uint64_t seq = 0;
  std::uint32_t record_count = 0;
  util::SimTime min_start = 0;
  util::SimTime max_end = 0;
  bool sealed = false;          // valid footer on disk
  std::uint64_t file_bytes = 0;
  std::vector<IndexEntry> index;
};

// ---- header / footer codec (shared by writer, reader, recovery) -------

// Appends the 8-byte segment header.
void encode_segment_header(net::BufWriter& out);
// True if `file` starts with a valid header of a version we can read.
bool check_segment_header(std::span<const std::uint8_t> file);

// Appends the footer payload + 12-byte trailer for a segment whose
// index and summary are in `meta`.
void encode_footer(const SegmentMeta& meta, net::BufWriter& out);

// Parses the 12-byte trailer at the end of a segment; nullopt when the
// magic is wrong (unsealed segment).
struct Trailer {
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};
std::optional<Trailer> parse_trailer(std::span<const std::uint8_t> trailer);

// CRC-checks + parses a footer payload (the bytes between the last
// record and the trailer).  On success fills meta's record_count /
// time range / index and marks it sealed.
bool parse_footer_payload(std::span<const std::uint8_t> payload,
                          std::uint32_t expected_crc, SegmentMeta& meta);

// ---- knobs ------------------------------------------------------------

class FileOps;  // file_ops.h

struct SegmentConfig {
  // Roll to a new segment once the active one's record bytes exceed
  // this.
  std::uint64_t max_segment_bytes = 8ull << 20;
  // Roll once max_end - min_start of the active segment exceeds this
  // (0 = no time-based rolling).
  util::SimTime max_segment_span = 0;
  // Sparse-index granularity: records per index block.
  std::size_t index_block_records = 64;
  // fsync() on seal and on explicit sync() — the durability ack point.
  // Off by default: tests and benches want page-cache speed; a
  // production monitor turns it on.
  bool fsync_on_seal = false;

  // Retention, applied oldest-segment-first each time a segment seals
  // (the active segment is never deleted; 0 = unlimited).
  std::uint64_t retain_max_bytes = 0;
  std::uint64_t retain_max_segments = 0;

  // Write/flush/sync indirection (file_ops.h); null = the real file
  // API.  Fault-injection tests plug a fault::FaultyFileOps in here.
  // Must outlive the writer.
  FileOps* file_ops = nullptr;
};

}  // namespace bgpbh::storage
