// Binary codec for one core::PeerEvent as a self-describing on-disk
// record: length-prefixed, versioned, CRC-checked (format.h).
//
// The decoder is fuzz-hardened the same way the BGP/MRT/IPFIX codecs
// are (tests/test_fuzz_codecs.cc): any input — random bytes, bit
// flips, truncation, duplicated records — either decodes into a valid
// event whose CRC matched, or returns nullopt without crashing or
// over-reading.  This record format doubles as the wire format for the
// future multi-process sharding work (ROADMAP), which is why every
// record is independently framed rather than relying on segment
// context.
#pragma once

#include <optional>

#include "core/events.h"
#include "net/bytes.h"

namespace bgpbh::storage {

// Appends one framed record (magic | version | len | payload | crc).
void encode_record(const core::PeerEvent& event, net::BufWriter& out);

// Decodes one framed record, advancing `in` past it on success.  On
// failure the reader position is unspecified — segment readers resync
// by re-seeking, the recovery scan treats it as the torn tail.
std::optional<core::PeerEvent> decode_record(net::BufReader& in);

// Payload-level codec (no frame), shared by encode/decode_record and
// reusable as a message body by a future wire protocol.
void encode_event_payload(const core::PeerEvent& event, net::BufWriter& out);
std::optional<core::PeerEvent> decode_event_payload(net::BufReader& in);

// Exact framed size of one event, for segment-roll accounting.
std::size_t encoded_record_size(const core::PeerEvent& event);

// Shared IP / prefix primitives, reused by the checkpoint codec
// (src/recovery/) so both on-disk formats reject the same malformed
// inputs (unknown family, host bits set past the prefix length).
void encode_ip(const net::IpAddr& ip, net::BufWriter& out);
std::optional<net::IpAddr> decode_ip(net::BufReader& in);
void encode_prefix(const net::Prefix& prefix, net::BufWriter& out);
std::optional<net::Prefix> decode_prefix(net::BufReader& in);

}  // namespace bgpbh::storage
