#include "storage/file_ops.h"

#include <unistd.h>

namespace bgpbh::storage {

std::size_t FileOps::write(const void* data, std::size_t bytes,
                           std::FILE* file) {
  return std::fwrite(data, 1, bytes, file);
}

bool FileOps::flush(std::FILE* file) { return std::fflush(file) == 0; }

bool FileOps::sync(int fd) { return ::fsync(fd) == 0; }

FileOps& real_file_ops() {
  static FileOps ops;
  return ops;
}

}  // namespace bgpbh::storage
