#include "storage/format.h"

#include <cctype>
#include <cstdio>

#include "util/crc32.h"

namespace bgpbh::storage {

std::string segment_file_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "events-%06llu.seg",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::uint64_t parse_segment_seq(const std::string& file_name) {
  constexpr std::string_view kPrefix = "events-";
  constexpr std::string_view kSuffix = ".seg";
  if (file_name.size() <= kPrefix.size() + kSuffix.size() ||
      file_name.compare(0, kPrefix.size(), kPrefix) != 0 ||
      file_name.compare(file_name.size() - kSuffix.size(), kSuffix.size(),
                        kSuffix) != 0) {
    return 0;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = kPrefix.size(); i < file_name.size() - kSuffix.size();
       ++i) {
    unsigned char c = static_cast<unsigned char>(file_name[i]);
    if (!std::isdigit(c)) return 0;
    seq = seq * 10 + (c - '0');
  }
  return seq;
}

void encode_segment_header(net::BufWriter& out) {
  out.u32(kSegmentMagic);
  out.u8(kFormatVersion);
  out.u8(0);
  out.u8(0);
  out.u8(0);
}

bool check_segment_header(std::span<const std::uint8_t> file) {
  if (file.size() < kSegmentHeaderBytes) return false;
  net::BufReader r(file);
  return r.u32() == kSegmentMagic && r.u8() == kFormatVersion;
}

void encode_footer(const SegmentMeta& meta, net::BufWriter& out) {
  net::BufWriter payload;
  payload.u32(meta.record_count);
  payload.u64(static_cast<std::uint64_t>(meta.min_start));
  payload.u64(static_cast<std::uint64_t>(meta.max_end));
  payload.u32(static_cast<std::uint32_t>(meta.index.size()));
  for (const auto& entry : meta.index) {
    payload.u64(entry.offset);
    payload.u32(entry.records);
    payload.u64(static_cast<std::uint64_t>(entry.min_start));
    payload.u64(static_cast<std::uint64_t>(entry.max_end));
  }
  std::uint32_t crc = util::crc32(payload.data());
  out.bytes(payload.data());
  out.u32(static_cast<std::uint32_t>(payload.size()));
  out.u32(crc);
  out.u32(kFooterMagic);
}

std::optional<Trailer> parse_trailer(std::span<const std::uint8_t> trailer) {
  if (trailer.size() != kTrailerBytes) return std::nullopt;
  net::BufReader r(trailer);
  Trailer out;
  out.payload_len = r.u32();
  out.payload_crc = r.u32();
  if (r.u32() != kFooterMagic) return std::nullopt;
  return out;
}

bool parse_footer_payload(std::span<const std::uint8_t> payload,
                          std::uint32_t expected_crc, SegmentMeta& meta) {
  if (util::crc32(payload) != expected_crc) return false;
  net::BufReader r(payload);
  meta.record_count = r.u32();
  meta.min_start = static_cast<util::SimTime>(r.u64());
  meta.max_end = static_cast<util::SimTime>(r.u64());
  std::uint32_t entries = r.u32();
  if (!r.ok() || std::size_t{entries} * 28 != r.remaining()) return false;
  meta.index.clear();
  meta.index.reserve(entries);
  for (std::uint32_t i = 0; i < entries; ++i) {
    IndexEntry entry;
    entry.offset = r.u64();
    entry.records = r.u32();
    entry.min_start = static_cast<util::SimTime>(r.u64());
    entry.max_end = static_cast<util::SimTime>(r.u64());
    meta.index.push_back(entry);
  }
  meta.sealed = true;
  return true;
}

}  // namespace bgpbh::storage
