#include "storage/recovery.h"

#include <cstdio>
#include <filesystem>

#include "storage/segment_reader.h"

namespace bgpbh::storage {

namespace fs = std::filesystem;

RecoveryResult recover_segment(const std::string& path) {
  RecoveryResult result;
  auto reader = SegmentReader::open(path);
  if (!reader) return result;  // not a segment (or unreadable): untouched
  result.records = reader->meta().record_count;
  result.meta = reader->meta();
  if (reader->meta().sealed) {
    result.ok = true;
    result.was_sealed = true;
    return result;
  }
  std::error_code ec;
  std::uint64_t file_bytes = fs::file_size(path, ec);
  if (ec) return result;
  result.truncated_bytes = file_bytes - reader->data_end();
  // Drop the torn tail, then append the rebuilt footer.
  fs::resize_file(path, reader->data_end(), ec);
  if (ec) return result;
  net::BufWriter footer;
  SegmentMeta sealed = reader->meta();
  sealed.sealed = true;
  encode_footer(sealed, footer);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) return result;
  bool wrote = std::fwrite(footer.data().data(), 1, footer.size(), f) ==
               footer.size();
  wrote = std::fclose(f) == 0 && wrote;
  if (!wrote) return result;
  sealed.file_bytes = reader->data_end() + footer.size();
  result.meta = sealed;
  result.ok = true;
  return result;
}

}  // namespace bgpbh::storage
