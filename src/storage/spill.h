// SpillWriter: the bridge from the live pipeline's EventStore to the
// append-only segment log.
//
// Shard workers hand the store sealed chunks of closed events; the
// store's spill hook (stream::EventStore::set_spill_listener) submits
// a copy of each chunk here.  Chunks cross a bounded MPMC queue to ONE
// writer thread that appends them to a SegmentWriter in submission
// order and sync()s after every drain — so disk I/O never runs on an
// ingesting thread, and everything appended before the queue emptied
// is the acked (recoverable) prefix.  A full queue blocks submit():
// backpressure, never loss, the same contract as the rest of the
// pipeline.
//
// stop() drains the queue, seals the active segment and joins the
// thread; after it returns, every submitted event is on disk.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/events.h"
#include "storage/segment_writer.h"
#include "telemetry/metrics.h"

namespace bgpbh::storage {

struct SpillConfig {
  std::string dir;
  SegmentConfig segment;
  // Bounded queue depth in chunks; a full queue blocks submit().
  std::size_t queue_chunks = 256;
  // Optional telemetry sink (must outlive the writer): storage.spill.*
  // append/sync latency histograms on the writer thread, hook-sampled
  // queue depth, and durability totals (events spilled, segments
  // sealed/retired, bytes on disk) mirrored through writer-thread
  // atomics so snapshots never race SegmentWriter's plain counters.
  telemetry::MetricsRegistry* metrics = nullptr;
};

class SpillWriter {
 public:
  // Opens the directory (recovering torn segments — SegmentWriter::
  // open) and starts the writer thread.  nullptr when the directory is
  // unusable.
  static std::unique_ptr<SpillWriter> open(SpillConfig config);
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  // Thread-safe; blocks while the queue is full.  Returns false (and
  // drops nothing — the chunk was never accepted) after stop().
  bool submit(std::vector<core::PeerEvent> chunk);

  // Drains the queue, seals the active segment, joins the writer
  // thread.  Idempotent; the destructor calls it.  After it returns,
  // every accepted event is durably appended.
  void stop();

  // ---- observability ----------------------------------------------------
  const std::string& dir() const { return writer_->dir(); }
  std::uint64_t events_spilled() const {
    return events_spilled_.load(std::memory_order_relaxed);
  }
  std::uint64_t segments_sealed() const { return writer_->segments_sealed(); }
  std::uint64_t segments_retired() const { return writer_->segments_retired(); }
  std::uint64_t bytes_on_disk() const { return writer_->bytes_on_disk(); }
  // True if any append or sync failed; the log is then a prefix.
  bool io_error() const { return io_error_.load(std::memory_order_relaxed); }

 private:
  explicit SpillWriter(SpillConfig config,
                       std::unique_ptr<SegmentWriter> writer);

  void run();

  SpillConfig config_;
  std::unique_ptr<SegmentWriter> writer_;  // writer thread only, after start

  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::vector<core::PeerEvent>> queue_;
  bool stopping_ = false;

  std::thread thread_;
  std::mutex stop_mu_;
  std::atomic<std::uint64_t> events_spilled_{0};
  std::atomic<bool> io_error_{false};
  bool joined_ = false;  // guarded by stop_mu_

  // Telemetry (null without a registry).  The writer thread owns
  // SegmentWriter's plain counters; it republishes them into the
  // *_mirror_ atomics once per drain so the collection hook can read
  // them from the snapshotting thread race-free.
  telemetry::LatencyHistogram* append_hist_ = nullptr;
  telemetry::LatencyHistogram* sync_hist_ = nullptr;
  telemetry::Counter* spilled_ctr_ = nullptr;
  telemetry::Counter* sealed_ctr_ = nullptr;
  telemetry::Counter* retired_ctr_ = nullptr;
  telemetry::Gauge* queue_gauge_ = nullptr;
  telemetry::Gauge* bytes_gauge_ = nullptr;
  std::uint64_t hook_id_ = 0;
  std::atomic<std::uint64_t> sealed_mirror_{0};
  std::atomic<std::uint64_t> retired_mirror_{0};
  std::atomic<std::uint64_t> bytes_mirror_{0};
};

}  // namespace bgpbh::storage
