// SpillWriter: the bridge from the live pipeline's EventStore to the
// append-only segment log.
//
// Shard workers hand the store sealed chunks of closed events; the
// store's spill hook (stream::EventStore::set_spill_listener) submits
// a copy of each chunk here.  Chunks cross a bounded MPMC queue to ONE
// writer thread that appends them to a SegmentWriter in submission
// order and sync()s after every drain — so disk I/O never runs on an
// ingesting thread, and everything appended before the queue emptied
// is the acked (recoverable) prefix.  A full queue blocks submit():
// backpressure, never loss, the same contract as the rest of the
// pipeline.
//
// Disk faults degrade, they don't latch.  A failed append/sync is
// retried with the configured RetryPolicy backoff; if every attempt
// fails the writer enters DEGRADED mode: chunks park in memory (ingest
// keeps flowing), the storage.spill.degraded alarm gauge goes up, and
// probe writes at the backoff cadence re-arm spilling automatically
// once the fault clears — the parked backlog then lands on disk
// exactly once (SegmentWriter::events_committed() tells the writer
// precisely which suffix still needs retrying).  Only if the fault
// persists through stop() are the parked events dropped, with an exact
// events_lost() count — no silent loss.
//
// stop() drains the queue, makes a final write attempt, seals the
// active segment and joins the thread; after it returns, every
// submitted event is on disk except the events_lost() tail.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/events.h"
#include "storage/segment_writer.h"
#include "telemetry/metrics.h"
#include "util/retry.h"

namespace bgpbh::storage {

struct SpillConfig {
  std::string dir;
  SegmentConfig segment;
  // Bounded queue depth in chunks; a full queue blocks submit().
  std::size_t queue_chunks = 256;
  // Transient-I/O retry schedule: max_attempts tries with backoff
  // before degrading to memory-only; while degraded, delay(k) (k = the
  // k-th probe, capped by max_delay) paces the probe writes that
  // re-arm spilling.
  util::RetryPolicy retry;
  // Optional telemetry sink (must outlive the writer): storage.spill.*
  // append/sync latency histograms on the writer thread, hook-sampled
  // queue depth, and durability totals (events spilled, segments
  // sealed/retired, bytes on disk) mirrored through writer-thread
  // atomics so snapshots never race SegmentWriter's plain counters.
  telemetry::MetricsRegistry* metrics = nullptr;
};

class SpillWriter {
 public:
  enum class State : int {
    kOk = 0,        // spilling normally
    kDegraded = 1,  // disk failing; chunks parked in memory, probing
    kFailed = 2,    // stopped with parked events dropped (see events_lost)
  };

  // Opens the directory (recovering torn segments — SegmentWriter::
  // open) and starts the writer thread.  nullptr when the directory is
  // unusable.
  static std::unique_ptr<SpillWriter> open(SpillConfig config);
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  // Thread-safe; blocks while the queue is full.  Returns false (and
  // drops nothing — the chunk was never accepted) after stop().
  bool submit(std::vector<core::PeerEvent> chunk);

  // Checkpoint barrier (src/recovery/).  Enqueued IN ORDER with chunks:
  // the writer thread first lands every chunk submitted before this
  // call (flush parked backlog + sync), then reports the durable log
  // position.  `ok` is false when a disk fault kept part of the backlog
  // in memory — the coordinator then abandons the checkpoint.  Blocks
  // until the writer thread reaches the barrier; returns false after
  // stop() (result is then untouched).
  struct BarrierResult {
    bool ok = false;
    DurablePos pos;
  };
  bool barrier(BarrierResult& result);

  // Retention floor passthrough (thread-safe): the writer thread
  // forwards it to SegmentWriter::set_retention_floor before its next
  // drain.  Only ever advances the pin conservatively — a lagging
  // floor pins more than needed, never less.
  void set_retention_floor(std::uint64_t seq) {
    retention_floor_.store(seq, std::memory_order_relaxed);
  }

  // Drains the queue, makes a final write attempt for anything parked,
  // seals the active segment, joins the writer thread.  Idempotent;
  // the destructor calls it.  After it returns, every accepted event
  // is durably appended except the events_lost() tail (non-zero only
  // when the disk fault persisted through the final attempt).
  void stop();

  // ---- observability ----------------------------------------------------
  const std::string& dir() const { return writer_->dir(); }
  // Events durably on disk (past a successful sync or seal) — the
  // acked prefix recovery would hand back.
  std::uint64_t events_spilled() const {
    return events_spilled_.load(std::memory_order_relaxed);
  }
  std::uint64_t segments_sealed() const { return writer_->segments_sealed(); }
  std::uint64_t segments_retired() const { return writer_->segments_retired(); }
  std::uint64_t bytes_on_disk() const { return writer_->bytes_on_disk(); }
  // Thread-safe health probes (all atomics the writer thread publishes).
  State state() const { return state_.load(std::memory_order_relaxed); }
  // Events currently held in memory awaiting a successful probe write.
  std::uint64_t events_parked() const {
    return parked_events_.load(std::memory_order_relaxed);
  }
  // Parked events dropped because the fault persisted through stop().
  std::uint64_t events_lost() const {
    return lost_events_.load(std::memory_order_relaxed);
  }
  // Times the writer fell into degraded (memory-only) mode.
  std::uint64_t times_degraded() const {
    return degraded_entered_.load(std::memory_order_relaxed);
  }
  // Write attempts beyond each first try (backoff retries + probes).
  std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  // True once events were lost or the final seal failed; on-disk data
  // is then a prefix of what was submitted.  Transient faults that
  // recovered before stop() do NOT set this — check state() and
  // times_degraded() for those.
  bool io_error() const { return io_error_.load(std::memory_order_relaxed); }

 private:
  explicit SpillWriter(SpillConfig config,
                       std::unique_ptr<SegmentWriter> writer);

  // Barrier rendezvous between a blocked barrier() caller and the
  // writer thread; lives on the caller's stack for the duration.
  struct BarrierTicket {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    BarrierResult result;
  };

  // Queue element: a chunk of events, or a barrier marker (ticket set,
  // chunk empty) — barriers stay ordered relative to the chunks around
  // them.
  struct Item {
    std::vector<core::PeerEvent> chunk;
    BarrierTicket* ticket = nullptr;
  };

  void run();
  // One write attempt over the parked backlog (append uncommitted
  // suffix + sync); retires the backlog on success.
  bool try_write_parked();
  // Retry / degrade / probe state machine around try_write_parked().
  void process(bool final_drain);
  // Interruptible backoff sleep (wakes early only to stop).
  void backoff(std::chrono::nanoseconds delay);
  void publish_parked_gauge();

  SpillConfig config_;
  std::unique_ptr<SegmentWriter> writer_;  // writer thread only, after start

  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Item> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> retention_floor_{0};

  // Writer-thread-only recovery state: chunks staged for writing (in
  // normal operation transiently, in degraded mode until a probe
  // succeeds), the count already retired to disk from past parked
  // lists, and the probe schedule.
  std::deque<std::vector<core::PeerEvent>> parked_;
  std::uint64_t retired_events_ = 0;
  bool degraded_ = false;
  std::size_t probe_attempt_ = 0;
  std::chrono::steady_clock::time_point next_probe_{};

  std::thread thread_;
  std::mutex stop_mu_;
  std::atomic<std::uint64_t> events_spilled_{0};
  std::atomic<State> state_{State::kOk};
  std::atomic<std::uint64_t> parked_events_{0};
  std::atomic<std::uint64_t> lost_events_{0};
  std::atomic<std::uint64_t> degraded_entered_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<bool> io_error_{false};
  bool joined_ = false;  // guarded by stop_mu_

  // Telemetry (null without a registry).  The writer thread owns
  // SegmentWriter's plain counters; it republishes them into the
  // *_mirror_ atomics once per drain so the collection hook can read
  // them from the snapshotting thread race-free.
  telemetry::LatencyHistogram* append_hist_ = nullptr;
  telemetry::LatencyHistogram* sync_hist_ = nullptr;
  telemetry::Counter* spilled_ctr_ = nullptr;
  telemetry::Counter* sealed_ctr_ = nullptr;
  telemetry::Counter* retired_ctr_ = nullptr;
  telemetry::Counter* lost_ctr_ = nullptr;
  telemetry::Counter* retries_ctr_ = nullptr;
  telemetry::Counter* degraded_entered_ctr_ = nullptr;
  telemetry::Gauge* queue_gauge_ = nullptr;
  telemetry::Gauge* bytes_gauge_ = nullptr;
  telemetry::Gauge* degraded_gauge_ = nullptr;
  telemetry::Gauge* parked_gauge_ = nullptr;
  std::uint64_t hook_id_ = 0;
  std::atomic<std::uint64_t> sealed_mirror_{0};
  std::atomic<std::uint64_t> retired_mirror_{0};
  std::atomic<std::uint64_t> bytes_mirror_{0};
};

}  // namespace bgpbh::storage
