// Read half of the persistent event store: one SegmentReader per
// segment file, a SegmentSet over a whole store directory.
//
// A sealed segment is opened by validating its footer and trusting the
// sparse time index; an unsealed one (crashed writer) is scanned
// record by record, keeping the intact prefix and rebuilding the index
// in memory — opening is always read-only, so a crashed directory can
// be queried without mutating it (recovery.h reseals in place when the
// caller owns the directory).
//
// Readers hold only the footer metadata in memory — O(index), a few
// hundred bytes per segment — and read record blocks from the file ON
// DEMAND per query, so reopening a multi-gigabyte archive costs
// megabytes, not the archive (the point of spilling to disk in the
// first place).  A time-window scan seeks to just the index blocks
// whose [min_start, max_end] envelope overlaps the window (records
// arrive in spill order, not time order, so the envelope — not a
// sorted range — is what the index stores), then filters each decoded
// record through core::overlaps_window, the same [t0, t1) rule every
// other event query in the repo uses.  Results are in on-disk
// (arrival) order; canonical_sort them for comparisons, exactly as
// with stream::EventStore::query.  Queries are const and thread-safe
// (block reads serialize on an internal mutex).
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/events.h"
#include "storage/format.h"

namespace bgpbh::storage {

class SegmentReader {
 public:
  // Opens + validates one segment file; nullptr when the file cannot
  // be read or its header is not ours.  Torn tails are tolerated (the
  // intact record prefix is served).
  static std::unique_ptr<SegmentReader> open(const std::string& path);
  ~SegmentReader();

  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  const SegmentMeta& meta() const { return meta_; }
  // Offset one past the last intact record (what recovery truncates to).
  std::uint64_t data_end() const { return data_end_; }

  // Visits every record in arrival order, one block in memory at a
  // time — how large archives are folded without materializing.
  void for_each(const std::function<void(const core::PeerEvent&)>& fn) const;

  // All records, arrival order (materializes; prefer for_each/query
  // for large segments).
  std::vector<core::PeerEvent> events() const;

  // Predicate scan over every record.
  void query(const std::function<bool(const core::PeerEvent&)>& pred,
             std::vector<core::PeerEvent>& out) const;

  // Window scan seeking via the sparse index: only blocks overlapping
  // [t0, t1) are read and decoded.
  void events_in(util::SimTime t0, util::SimTime t1,
                 std::vector<core::PeerEvent>& out) const;

  // Index blocks decoded by the last events_in() call — lets tests
  // prove the index actually skips (diagnostics only).
  std::size_t last_scan_blocks_decoded() const {
    return last_scan_blocks_decoded_;
  }

  // Records whose CRC matched at seal time but that decode could not
  // serve (disk corruption inside a sealed segment).
  std::size_t decode_errors() const { return decode_errors_; }

 private:
  SegmentReader() = default;

  // Byte offset one past block `i`'s last record.
  std::uint64_t block_end(std::size_t i) const {
    return i + 1 < meta_.index.size() ? meta_.index[i + 1].offset : data_end_;
  }

  // Reads + decodes one index block, invoking `fn` per record.  Caller
  // holds io_mu_.
  void decode_block_locked(
      std::size_t i,
      const std::function<void(const core::PeerEvent&)>& fn) const;

  std::string path_;
  std::FILE* file_ = nullptr;  // read-only; access under io_mu_
  SegmentMeta meta_;
  std::uint64_t data_end_ = 0;
  mutable std::mutex io_mu_;                 // serializes block reads
  mutable std::vector<std::uint8_t> block_;  // scratch, under io_mu_
  mutable std::size_t last_scan_blocks_decoded_ = 0;
  mutable std::size_t decode_errors_ = 0;
};

// All segments of one store directory, sequence order.  Opening takes
// a point-in-time snapshot of the directory listing: segments created
// by a writer afterwards are not visible, which is exactly what the
// merged live+disk view wants (the live store holds this session's
// events; the set holds prior sessions').
class SegmentSet {
 public:
  // Opens every events-*.seg in `dir` (an absent or empty directory
  // yields an empty set — a first run resuming nothing is not an
  // error).  Unreadable files are skipped and counted.
  static std::unique_ptr<SegmentSet> open(const std::string& dir);

  std::size_t num_segments() const { return segments_.size(); }
  std::size_t skipped_files() const { return skipped_files_; }
  std::size_t size() const;  // total records
  std::uint64_t bytes_on_disk() const;
  const std::vector<std::unique_ptr<SegmentReader>>& segments() const {
    return segments_;
  }

  // Streaming visit of every record (arrival order within a segment,
  // segments in sequence order) — one block in memory at a time.
  void for_each(const std::function<void(const core::PeerEvent&)>& fn) const;

  // Arrival order within a segment, segments in sequence order.
  std::vector<core::PeerEvent> events() const;

  std::vector<core::PeerEvent> query(
      const std::function<bool(const core::PeerEvent&)>& pred) const;
  std::size_t count(
      const std::function<bool(const core::PeerEvent&)>& pred) const;

  // Window scan: whole segments outside [t0, t1) are skipped via their
  // footer summary, the rest seek via their sparse index.
  std::vector<core::PeerEvent> events_in(util::SimTime t0,
                                         util::SimTime t1) const;

 private:
  SegmentSet() = default;

  std::vector<std::unique_ptr<SegmentReader>> segments_;
  std::size_t skipped_files_ = 0;
};

}  // namespace bgpbh::storage
