// Append-only segment log writer (the write half of the persistent
// event store — format.h documents the on-disk layout).
//
// One writer owns a store directory: it appends CRC-framed PeerEvent
// records to the active segment, accumulates the sparse time index in
// memory, and *seals* the segment (footer + trailer) when it exceeds
// the configured size or time span, rolling to the next sequence
// number.  Sealing is also when retention runs: oldest sealed segments
// are deleted until the directory fits the configured budget.
//
// Durability contract: everything appended before a sync() that
// returned true survives a crash (modulo fsync_on_seal for
// power-loss-grade durability); a crash mid-append loses at most the
// unsynced tail — recovery (recovery.h) truncates the torn record and
// reseals, so reopening the directory always yields a prefix of what
// was appended.  Single-threaded: callers serialize (storage::
// SpillWriter wraps one writer in a queue-fed thread).
#pragma once

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/events.h"
#include "net/bytes.h"
#include "storage/format.h"

namespace bgpbh::storage {

class SegmentWriter {
 public:
  // Opens (creating if needed) `dir`.  Any torn active segment left by
  // a crashed writer is recovered and resealed first; appending then
  // continues in a fresh segment after the highest existing sequence
  // number.  Returns nullptr if the directory cannot be created or a
  // file cannot be opened.
  static std::unique_ptr<SegmentWriter> open(const std::string& dir,
                                             SegmentConfig config = {});
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  // Appends one record to the active segment (opening it lazily),
  // sealing + rolling afterwards if the segment crossed a roll
  // threshold.  Returns false on I/O error — the active segment is
  // then ABANDONED unsealed (never resealed by this writer, its
  // sequence number burned) so a partial write can never end up behind
  // a CRC-valid footer; the next append starts a fresh segment, and
  // recovery truncates the abandoned one to its intact prefix on the
  // next directory open.
  bool append(const core::PeerEvent& event);
  bool append(std::span<const core::PeerEvent> events);

  // Flushes the active segment to the OS (the durability ack point;
  // fsync too when config.fsync_on_seal).  Records appended before a
  // successful sync() survive recovery byte-wise.
  bool sync();

  // Seals the active segment now (no-op when it is empty) and closes
  // the writer.  Idempotent; the destructor calls it.
  bool close();

  // ---- observability ----------------------------------------------------
  const std::string& dir() const { return dir_; }
  std::uint64_t events_appended() const { return events_appended_; }
  std::uint64_t segments_sealed() const { return segments_sealed_; }
  std::uint64_t segments_retired() const { return segments_retired_; }
  // Sealed bytes currently on disk plus the active segment's.
  std::uint64_t bytes_on_disk() const;
  std::uint64_t active_seq() const { return next_seq_; }

 private:
  SegmentWriter(std::string dir, SegmentConfig config, std::uint64_t next_seq,
                std::vector<SegmentMeta> sealed);

  bool open_active();     // lazily creates the next segment file
  bool seal_active();     // footer + trailer + fclose + retention
  void abandon_active();  // I/O error: close unsealed, burn the seq
  void apply_retention();

  std::string dir_;
  SegmentConfig config_;

  std::FILE* file_ = nullptr;
  std::string active_path_;
  SegmentMeta active_;           // summary + index of the active segment
  IndexEntry block_;             // index block being accumulated
  std::uint64_t write_offset_ = 0;

  std::uint64_t next_seq_ = 1;
  std::vector<SegmentMeta> sealed_;  // oldest first, for retention
  std::uint64_t events_appended_ = 0;
  std::uint64_t segments_sealed_ = 0;
  std::uint64_t segments_retired_ = 0;
  bool closed_ = false;
};

}  // namespace bgpbh::storage
