// Append-only segment log writer (the write half of the persistent
// event store — format.h documents the on-disk layout).
//
// One writer owns a store directory: it appends CRC-framed PeerEvent
// records to the active segment, accumulates the sparse time index in
// memory, and *seals* the segment (footer + trailer) when it exceeds
// the configured size or time span, rolling to the next sequence
// number.  Sealing is also when retention runs: oldest sealed segments
// are deleted until the directory fits the configured budget.
//
// Durability contract: everything appended before a sync() that
// returned true survives a crash (modulo fsync_on_seal for
// power-loss-grade durability); a crash mid-append loses at most the
// unsynced tail — recovery (recovery.h) truncates the torn record and
// reseals, so reopening the directory always yields a prefix of what
// was appended.  Single-threaded: callers serialize (storage::
// SpillWriter wraps one writer in a queue-fed thread).
#pragma once

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/events.h"
#include "net/bytes.h"
#include "storage/file_ops.h"
#include "storage/format.h"

namespace bgpbh::storage {

// A point in the log that is durable: every record of segments with
// sequence < seq, plus the first `records` records of segment `seq`,
// survive a crash.  Monotone over the writer's lifetime: seq only
// grows (seal and abandon both burn the sequence number) and records
// grows within one segment, resetting only when seq advances.
// Checkpoints stamp one of these so recovery knows exactly which log
// prefix the checkpoint covers (src/recovery/).
struct DurablePos {
  std::uint64_t seq = 0;
  std::uint64_t records = 0;
  friend bool operator==(const DurablePos&, const DurablePos&) = default;
};

class SegmentWriter {
 public:
  // Opens (creating if needed) `dir`.  Any torn active segment left by
  // a crashed writer is recovered and resealed first; appending then
  // continues in a fresh segment after the highest existing sequence
  // number.  Returns nullptr if the directory cannot be created or a
  // file cannot be opened.
  static std::unique_ptr<SegmentWriter> open(const std::string& dir,
                                             SegmentConfig config = {});
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  // Appends one record to the active segment (opening it lazily),
  // sealing + rolling afterwards if the segment crossed a roll
  // threshold.  Returns false on I/O error — the active segment is
  // then ABANDONED: closed unsealed, truncated back to the synced
  // watermark (the last successful sync()), resealed in place over the
  // surviving prefix, and its sequence number burned, so a partial
  // write can never end up behind a CRC-valid footer AND a retry of
  // everything past events_committed() lands exactly once.  The next
  // append starts a fresh segment.
  bool append(const core::PeerEvent& event);
  bool append(std::span<const core::PeerEvent> events);

  // Flushes the active segment to the OS (the durability ack point;
  // fsync too when config.fsync_on_seal).  Records appended before a
  // successful sync() survive recovery byte-wise.
  bool sync();

  // Seals the active segment now (no-op when it is empty) and closes
  // the writer.  Idempotent; the destructor calls it.
  bool close();

  // ---- observability ----------------------------------------------------
  const std::string& dir() const { return dir_; }
  // Records accepted and still standing: an abandon rolls back the
  // unacked records it truncated off disk, so a caller retrying the
  // suffix past events_committed() never inflates this count.
  std::uint64_t events_appended() const { return events_appended_; }
  // Durability watermark: records by THIS writer that are past an ack
  // point (sync() returned true, or their segment sealed).  Advances
  // monotonically; after a failed append/sync the gap
  // events_appended() - events_committed() is exactly the suffix a
  // caller must retry, and retrying it can never duplicate (abandon
  // truncates the file back to this watermark).
  std::uint64_t events_committed() const { return events_committed_; }
  std::uint64_t segments_sealed() const { return segments_sealed_; }
  std::uint64_t segments_retired() const { return segments_retired_; }
  // Segments abandoned after an I/O error (their synced prefix was
  // rescued and resealed where possible).
  std::uint64_t segments_abandoned() const { return segments_abandoned_; }
  // errno captured at the most recent failed write/flush/sync; 0 if
  // none failed yet.
  int last_errno() const { return last_errno_; }
  // Sealed bytes currently on disk plus the active segment's.
  std::uint64_t bytes_on_disk() const;
  std::uint64_t active_seq() const { return next_seq_; }

  // The current durable log position (see DurablePos).  Records of the
  // active segment count only once acked by sync(); sealed segments
  // are fully covered because sealing advances next_seq_.
  DurablePos durable_pos() const { return {next_seq_, synced_records_}; }

  // Retention floor (src/recovery/): segments with sequence >= seq are
  // never retired, regardless of budget — the checkpoint coordinator
  // pins everything at or past the newest checkpoint's position so the
  // replay suffix stays on disk.  0 (the default) pins nothing.
  void set_retention_floor(std::uint64_t seq) { retention_floor_ = seq; }
  std::uint64_t retention_floor() const { return retention_floor_; }

 private:
  SegmentWriter(std::string dir, SegmentConfig config, std::uint64_t next_seq,
                std::vector<SegmentMeta> sealed);

  bool open_active();     // lazily creates the next segment file
  bool seal_active();     // footer + trailer + fclose + retention
  void abandon_active();  // I/O error: truncate to synced, burn the seq
  void apply_retention();

  std::string dir_;
  SegmentConfig config_;
  FileOps* ops_;  // config_.file_ops or the real pass-through

  std::FILE* file_ = nullptr;
  std::string active_path_;
  SegmentMeta active_;           // summary + index of the active segment
  IndexEntry block_;             // index block being accumulated
  std::uint64_t write_offset_ = 0;
  // File offset / record count of the last successful sync() of the
  // active segment (0 = nothing acked yet); the offset is always a
  // record boundary, and the count is what an abandon rolls
  // events_appended_ back to.
  std::uint64_t synced_offset_ = 0;
  std::uint64_t synced_records_ = 0;

  std::uint64_t next_seq_ = 1;
  std::vector<SegmentMeta> sealed_;  // oldest first, for retention
  std::uint64_t events_appended_ = 0;
  std::uint64_t events_committed_ = 0;
  std::uint64_t segments_sealed_ = 0;
  std::uint64_t segments_retired_ = 0;
  std::uint64_t segments_abandoned_ = 0;
  std::uint64_t retention_floor_ = 0;
  int last_errno_ = 0;
  bool closed_ = false;
};

}  // namespace bgpbh::storage
