#include "storage/segment_writer.h"

#include <algorithm>
#include <cerrno>
#include <filesystem>

#include <unistd.h>

#include "storage/record_codec.h"
#include "storage/recovery.h"

namespace bgpbh::storage {

namespace fs = std::filesystem;

std::unique_ptr<SegmentWriter> SegmentWriter::open(const std::string& dir,
                                                   SegmentConfig config) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir)) return nullptr;
  // Existing segments, sequence order: recover-and-reseal any torn one
  // (crashed writer), and account them all for retention.
  std::vector<std::pair<std::uint64_t, std::string>> existing;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    std::uint64_t seq = parse_segment_seq(entry.path().filename().string());
    if (seq != 0) existing.emplace_back(seq, entry.path().string());
  }
  std::sort(existing.begin(), existing.end());
  std::vector<SegmentMeta> sealed;
  std::uint64_t next_seq = 1;
  for (const auto& [seq, path] : existing) {
    next_seq = std::max(next_seq, seq + 1);
    RecoveryResult recovered = recover_segment(path);
    if (recovered.ok) sealed.push_back(recovered.meta);
    // Unrecoverable files are left alone and simply not accounted.
  }
  return std::unique_ptr<SegmentWriter>(
      new SegmentWriter(dir, std::move(config), next_seq, std::move(sealed)));
}

SegmentWriter::SegmentWriter(std::string dir, SegmentConfig config,
                             std::uint64_t next_seq,
                             std::vector<SegmentMeta> sealed)
    : dir_(std::move(dir)),
      config_(std::move(config)),
      ops_(config_.file_ops ? config_.file_ops : &real_file_ops()),
      next_seq_(next_seq),
      sealed_(std::move(sealed)) {
  if (config_.index_block_records == 0) config_.index_block_records = 64;
}

SegmentWriter::~SegmentWriter() { close(); }

bool SegmentWriter::open_active() {
  active_path_ = (fs::path(dir_) / segment_file_name(next_seq_)).string();
  file_ = std::fopen(active_path_.c_str(), "wb");
  if (!file_) {
    last_errno_ = errno;
    return false;
  }
  net::BufWriter header;
  encode_segment_header(header);
  if (ops_->write(header.data().data(), header.size(), file_) !=
      header.size()) {
    // Header-only file: safe to remove and reuse the sequence number
    // (no records were acked under it).
    last_errno_ = errno;
    std::fclose(file_);
    file_ = nullptr;
    std::error_code ec;
    fs::remove(active_path_, ec);
    return false;
  }
  write_offset_ = kSegmentHeaderBytes;
  synced_offset_ = 0;
  synced_records_ = 0;
  active_ = SegmentMeta{};
  active_.seq = next_seq_;
  block_ = IndexEntry{};
  return true;
}

void SegmentWriter::abandon_active() {
  // A partial record may be on disk, and fclose() flushes whatever
  // stdio still buffered — possibly records whose write the caller was
  // told FAILED.  Never write a footer over any of it (a CRC-valid
  // footer with a misaligned index would defeat recovery).  Instead:
  // close as-is, truncate back to the synced watermark so the file
  // holds exactly the acked prefix, reseal that prefix in place, and
  // burn the sequence number.  Truncation is what makes a caller-side
  // retry of the unacked suffix exactly-once; reopening the same seq
  // with "wb" would instead destroy the acked records in the file.
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
  ++segments_abandoned_;
  // The records past the synced watermark are about to be truncated
  // off disk: roll them out of events_appended_ too, so a caller
  // re-appending the suffix past events_committed() keeps the count
  // exact (each distinct record counted once).
  events_appended_ -= active_.record_count - synced_records_;
  std::error_code ec;
  if (synced_offset_ > kSegmentHeaderBytes) {
    fs::resize_file(active_path_, synced_offset_, ec);
    if (!ec) {
      RecoveryResult healed = recover_segment(active_path_);
      if (healed.ok && healed.records > 0) sealed_.push_back(healed.meta);
    }
    // If the truncate itself failed (not an injectable fault — the
    // disk is truly gone), the torn file stays; the next directory
    // open recovers its intact prefix instead.
  } else {
    // Nothing acked in this segment: drop the file entirely.
    fs::remove(active_path_, ec);
  }
  ++next_seq_;
  synced_offset_ = 0;
  synced_records_ = 0;
}

bool SegmentWriter::append(const core::PeerEvent& event) {
  if (closed_) return false;
  if (!file_ && !open_active()) return false;
  net::BufWriter record;
  encode_record(event, record);
  if (ops_->write(record.data().data(), record.size(), file_) !=
      record.size()) {
    last_errno_ = errno;
    abandon_active();
    return false;
  }
  if (block_.records == 0) {
    block_.offset = write_offset_;
    block_.min_start = event.start;
    block_.max_end = event.end;
  } else {
    block_.min_start = std::min(block_.min_start, event.start);
    block_.max_end = std::max(block_.max_end, event.end);
  }
  ++block_.records;
  if (active_.record_count == 0) {
    active_.min_start = event.start;
    active_.max_end = event.end;
  } else {
    active_.min_start = std::min(active_.min_start, event.start);
    active_.max_end = std::max(active_.max_end, event.end);
  }
  ++active_.record_count;
  write_offset_ += record.size();
  ++events_appended_;
  if (block_.records >= config_.index_block_records) {
    active_.index.push_back(block_);
    block_ = IndexEntry{};
  }
  // Roll thresholds: size always, time span when configured.
  bool roll = write_offset_ >= config_.max_segment_bytes;
  if (config_.max_segment_span > 0 &&
      active_.max_end - active_.min_start >= config_.max_segment_span) {
    roll = true;
  }
  if (roll) return seal_active();
  return true;
}

bool SegmentWriter::append(std::span<const core::PeerEvent> events) {
  for (const auto& event : events) {
    if (!append(event)) return false;
  }
  return true;
}

bool SegmentWriter::sync() {
  if (!file_) return true;
  if (!ops_->flush(file_) ||
      (config_.fsync_on_seal && !ops_->sync(::fileno(file_)))) {
    last_errno_ = errno;
    abandon_active();
    return false;
  }
  synced_offset_ = write_offset_;
  synced_records_ = active_.record_count;
  events_committed_ = events_appended_;
  return true;
}

bool SegmentWriter::seal_active() {
  if (!file_) return true;
  if (block_.records > 0) {
    active_.index.push_back(block_);
    block_ = IndexEntry{};
  }
  if (active_.record_count == 0) {
    // Nothing was appended: drop the header-only file instead of
    // leaving an empty segment behind.
    std::fclose(file_);
    file_ = nullptr;
    std::error_code ec;
    fs::remove(active_path_, ec);
    synced_offset_ = 0;
    return true;
  }
  active_.sealed = true;
  net::BufWriter footer;
  encode_footer(active_, footer);
  bool ok = ops_->write(footer.data().data(), footer.size(), file_) ==
            footer.size();
  ok = ops_->flush(file_) && ok;
  if (config_.fsync_on_seal) ok = ops_->sync(::fileno(file_)) && ok;
  if (ok) {
    ok = std::fclose(file_) == 0;
    file_ = nullptr;
  }
  if (!ok) {
    // The footer may be partial (or, after a failed close, of unknown
    // durability): fall back to the abandon path, which truncates the
    // file to the synced record prefix and reseals just that, keeping
    // caller-side retries exactly-once.
    last_errno_ = errno;
    active_.sealed = false;
    abandon_active();
    return false;
  }
  active_.file_bytes = write_offset_ + footer.size();
  sealed_.push_back(active_);
  ++segments_sealed_;
  events_committed_ = events_appended_;
  synced_offset_ = 0;
  synced_records_ = 0;
  ++next_seq_;
  apply_retention();
  return true;
}

void SegmentWriter::apply_retention() {
  if (config_.retain_max_bytes == 0 && config_.retain_max_segments == 0) {
    return;
  }
  auto over_budget = [&] {
    if (config_.retain_max_segments > 0 &&
        sealed_.size() > config_.retain_max_segments) {
      return true;
    }
    if (config_.retain_max_bytes > 0) {
      std::uint64_t total = 0;
      for (const auto& meta : sealed_) total += meta.file_bytes;
      return total > config_.retain_max_bytes;
    }
    return false;
  };
  // Oldest first; never below one segment (the data just sealed), and
  // never at or past the retention floor — a checkpoint may still need
  // that suffix of the log for crash replay (src/recovery/).
  while (sealed_.size() > 1 && over_budget()) {
    if (retention_floor_ > 0 && sealed_.front().seq >= retention_floor_) break;
    std::error_code ec;
    fs::remove(fs::path(dir_) / segment_file_name(sealed_.front().seq), ec);
    sealed_.erase(sealed_.begin());
    ++segments_retired_;
  }
}

bool SegmentWriter::close() {
  if (closed_) return true;
  closed_ = true;
  return seal_active();
}

std::uint64_t SegmentWriter::bytes_on_disk() const {
  std::uint64_t total = file_ ? write_offset_ : 0;
  for (const auto& meta : sealed_) total += meta.file_bytes;
  return total;
}

}  // namespace bgpbh::storage
