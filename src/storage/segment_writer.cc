#include "storage/segment_writer.h"

#include <algorithm>
#include <filesystem>

#include <unistd.h>

#include "storage/record_codec.h"
#include "storage/recovery.h"

namespace bgpbh::storage {

namespace fs = std::filesystem;

std::unique_ptr<SegmentWriter> SegmentWriter::open(const std::string& dir,
                                                   SegmentConfig config) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir)) return nullptr;
  // Existing segments, sequence order: recover-and-reseal any torn one
  // (crashed writer), and account them all for retention.
  std::vector<std::pair<std::uint64_t, std::string>> existing;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    std::uint64_t seq = parse_segment_seq(entry.path().filename().string());
    if (seq != 0) existing.emplace_back(seq, entry.path().string());
  }
  std::sort(existing.begin(), existing.end());
  std::vector<SegmentMeta> sealed;
  std::uint64_t next_seq = 1;
  for (const auto& [seq, path] : existing) {
    next_seq = std::max(next_seq, seq + 1);
    RecoveryResult recovered = recover_segment(path);
    if (recovered.ok) sealed.push_back(recovered.meta);
    // Unrecoverable files are left alone and simply not accounted.
  }
  return std::unique_ptr<SegmentWriter>(
      new SegmentWriter(dir, std::move(config), next_seq, std::move(sealed)));
}

SegmentWriter::SegmentWriter(std::string dir, SegmentConfig config,
                             std::uint64_t next_seq,
                             std::vector<SegmentMeta> sealed)
    : dir_(std::move(dir)),
      config_(std::move(config)),
      next_seq_(next_seq),
      sealed_(std::move(sealed)) {
  if (config_.index_block_records == 0) config_.index_block_records = 64;
}

SegmentWriter::~SegmentWriter() { close(); }

bool SegmentWriter::open_active() {
  active_path_ = (fs::path(dir_) / segment_file_name(next_seq_)).string();
  file_ = std::fopen(active_path_.c_str(), "wb");
  if (!file_) return false;
  net::BufWriter header;
  encode_segment_header(header);
  if (std::fwrite(header.data().data(), 1, header.size(), file_) !=
      header.size()) {
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  write_offset_ = kSegmentHeaderBytes;
  active_ = SegmentMeta{};
  active_.seq = next_seq_;
  block_ = IndexEntry{};
  return true;
}

void SegmentWriter::abandon_active() {
  // A partial record may be on disk.  Never write a footer over it (a
  // CRC-valid footer with a misaligned index would defeat recovery):
  // close as-is, burn the sequence number, and let recover_segment()
  // truncate the torn tail on the next directory open.  Reopening the
  // same seq with "wb" would instead destroy the acked records already
  // in the file.
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
  ++next_seq_;
}

bool SegmentWriter::append(const core::PeerEvent& event) {
  if (closed_) return false;
  if (!file_ && !open_active()) return false;
  net::BufWriter record;
  encode_record(event, record);
  if (std::fwrite(record.data().data(), 1, record.size(), file_) !=
      record.size()) {
    abandon_active();
    return false;
  }
  if (block_.records == 0) {
    block_.offset = write_offset_;
    block_.min_start = event.start;
    block_.max_end = event.end;
  } else {
    block_.min_start = std::min(block_.min_start, event.start);
    block_.max_end = std::max(block_.max_end, event.end);
  }
  ++block_.records;
  if (active_.record_count == 0) {
    active_.min_start = event.start;
    active_.max_end = event.end;
  } else {
    active_.min_start = std::min(active_.min_start, event.start);
    active_.max_end = std::max(active_.max_end, event.end);
  }
  ++active_.record_count;
  write_offset_ += record.size();
  ++events_appended_;
  if (block_.records >= config_.index_block_records) {
    active_.index.push_back(block_);
    block_ = IndexEntry{};
  }
  // Roll thresholds: size always, time span when configured.
  bool roll = write_offset_ >= config_.max_segment_bytes;
  if (config_.max_segment_span > 0 &&
      active_.max_end - active_.min_start >= config_.max_segment_span) {
    roll = true;
  }
  if (roll) return seal_active();
  return true;
}

bool SegmentWriter::append(std::span<const core::PeerEvent> events) {
  for (const auto& event : events) {
    if (!append(event)) return false;
  }
  return true;
}

bool SegmentWriter::sync() {
  if (!file_) return true;
  if (std::fflush(file_) != 0 ||
      (config_.fsync_on_seal && ::fsync(::fileno(file_)) != 0)) {
    abandon_active();
    return false;
  }
  return true;
}

bool SegmentWriter::seal_active() {
  if (!file_) return true;
  if (block_.records > 0) {
    active_.index.push_back(block_);
    block_ = IndexEntry{};
  }
  bool ok = true;
  if (active_.record_count == 0) {
    // Nothing was appended: drop the header-only file instead of
    // leaving an empty segment behind.
    std::fclose(file_);
    file_ = nullptr;
    std::error_code ec;
    fs::remove(active_path_, ec);
    return true;
  }
  active_.sealed = true;
  net::BufWriter footer;
  encode_footer(active_, footer);
  ok = std::fwrite(footer.data().data(), 1, footer.size(), file_) ==
       footer.size();
  ok = std::fflush(file_) == 0 && ok;
  if (config_.fsync_on_seal) ok = ::fsync(::fileno(file_)) == 0 && ok;
  ok = std::fclose(file_) == 0 && ok;
  file_ = nullptr;
  ++next_seq_;
  if (!ok) {
    // The footer may be partial: the segment stays unsealed on disk
    // and out of the sealed bookkeeping; recovery truncates + reseals
    // it on the next directory open.
    return false;
  }
  active_.file_bytes = write_offset_ + footer.size();
  sealed_.push_back(active_);
  ++segments_sealed_;
  apply_retention();
  return ok;
}

void SegmentWriter::apply_retention() {
  if (config_.retain_max_bytes == 0 && config_.retain_max_segments == 0) {
    return;
  }
  auto over_budget = [&] {
    if (config_.retain_max_segments > 0 &&
        sealed_.size() > config_.retain_max_segments) {
      return true;
    }
    if (config_.retain_max_bytes > 0) {
      std::uint64_t total = 0;
      for (const auto& meta : sealed_) total += meta.file_bytes;
      return total > config_.retain_max_bytes;
    }
    return false;
  };
  // Oldest first; never below one segment (the data just sealed).
  while (sealed_.size() > 1 && over_budget()) {
    std::error_code ec;
    fs::remove(fs::path(dir_) / segment_file_name(sealed_.front().seq), ec);
    sealed_.erase(sealed_.begin());
    ++segments_retired_;
  }
}

bool SegmentWriter::close() {
  if (closed_) return true;
  closed_ = true;
  return seal_active();
}

std::uint64_t SegmentWriter::bytes_on_disk() const {
  std::uint64_t total = file_ ? write_offset_ : 0;
  for (const auto& meta : sealed_) total += meta.file_bytes;
  return total;
}

}  // namespace bgpbh::storage
