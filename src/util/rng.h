// Deterministic random number generation for the bgpbh simulator.
//
// Every stochastic component in the library draws from an Rng that is
// explicitly seeded, so that all experiments are bit-reproducible across
// runs and platforms.  We avoid <random> distributions (implementation-
// defined sequences) and implement the few we need ourselves.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cmath>
#include <span>
#include <vector>

namespace bgpbh::util {

// SplitMix64: used to expand a single 64-bit seed into a full state.
// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64();

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Exponential with given mean (> 0).
  double exponential(double mean);

  // Pareto with scale xm > 0 and shape alpha > 0 (heavy tails; used for
  // attack volumes and event durations).
  double pareto(double xm, double alpha);

  // Zipf-like rank sampler over [0, n): P(k) ~ 1/(k+1)^s.  Sampling is
  // done by inversion over a precomputed table-free approximation and is
  // exact for our use (small skew, bounded n) via rejection.
  std::size_t zipf(std::size_t n, double s);

  // Pick an index according to non-negative weights. Sum must be > 0.
  std::size_t weighted(std::span<const double> weights);

  // Pick a uniformly random element index of a non-empty container size.
  template <typename Vec>
  const typename Vec::value_type& pick(const Vec& v) {
    return v[static_cast<std::size_t>(uniform(v.size()))];
  }

  // Fisher-Yates shuffle.
  template <typename Vec>
  void shuffle(Vec& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  // Derive an independent child generator; stable given the same label.
  Rng fork(std::uint64_t label) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace bgpbh::util
