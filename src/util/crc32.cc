#include "util/crc32.h"

#include <array>

namespace bgpbh::util {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = kTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace bgpbh::util
