// RetryPolicy: deterministic exponential backoff with jitter, shared
// by every recovery loop in the system (the reconnecting collector
// source in src/fault/, the spill writer's transient-I/O retries and
// degraded-mode probe cadence in src/storage/).
//
// The delay for attempt k (1-based) is
//
//   min(base_delay * 2^(k-1), max_delay) * jitter_factor
//
// where jitter_factor is drawn uniformly from [1-jitter, 1+jitter] by
// hashing (seed, k) — the same (policy, attempt) pair always yields
// the same delay, so fault-injection tests and replayed incidents are
// bit-reproducible, while distinct seeds decorrelate the backoff of
// independent collectors (no thundering-herd rejoin).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace bgpbh::util {

struct RetryPolicy {
  // Transient retries before the caller escalates (degrades, gives
  // up); 0 is treated as 1 — every loop gets at least one attempt.
  std::size_t max_attempts = 5;
  std::chrono::nanoseconds base_delay = std::chrono::milliseconds(10);
  std::chrono::nanoseconds max_delay = std::chrono::seconds(5);
  // Fraction of the delay randomized symmetrically; clamped to [0, 1].
  double jitter = 0.2;
  std::uint64_t seed = 0x62677062;  // "bgpb"

  // Backoff delay for the k-th attempt (k >= 1); pure and
  // deterministic in (policy fields, attempt).  Attempts beyond the
  // doubling range saturate at max_delay (before jitter).
  std::chrono::nanoseconds delay(std::size_t attempt) const;

  std::size_t attempts() const { return max_attempts == 0 ? 1 : max_attempts; }
};

}  // namespace bgpbh::util
