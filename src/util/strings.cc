#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdint>

namespace bgpbh::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool contains_icase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (std::tolower(static_cast<unsigned char>(haystack[i + j])) !=
          std::tolower(static_cast<unsigned char>(needle[j]))) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > UINT32_MAX) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

std::string strf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace bgpbh::util
