#include "util/time.h"

#include <cstdio>

namespace bgpbh::util {

std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);              // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;   // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;             // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

Date civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);            // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);            // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                 // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                         // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                              // [1, 12]
  return Date{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
              static_cast<int>(d)};
}

SimTime from_date(int y, int m, int d) { return days_from_civil(y, m, d) * kDay; }

SimTime from_datetime(int y, int m, int d, int hh, int mm, int ss) {
  return from_date(y, m, d) + hh * kHour + mm * kMinute + ss;
}

Date to_date(SimTime t) { return civil_from_days(day_index(t)); }

std::int64_t day_index(SimTime t) {
  // Floor division also for negative times.
  return (t >= 0) ? t / kDay : (t - (kDay - 1)) / kDay;
}

std::string format_date(SimTime t) {
  Date d = to_date(t);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string format_datetime(SimTime t) {
  Date d = to_date(t);
  SimTime rem = t - day_index(t) * kDay;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ", d.year,
                d.month, d.day, static_cast<int>(rem / kHour),
                static_cast<int>((rem % kHour) / kMinute),
                static_cast<int>(rem % kMinute));
  return buf;
}

std::string format_duration(SimTime d) {
  if (d < 0) return "-" + format_duration(-d);
  char buf[48];
  if (d < kMinute) {
    std::snprintf(buf, sizeof buf, "%lds", d);
  } else if (d < kHour) {
    std::snprintf(buf, sizeof buf, "%ldm%lds", d / kMinute, d % kMinute);
  } else if (d < kDay) {
    std::snprintf(buf, sizeof buf, "%ldh%ldm", d / kHour, (d % kHour) / kMinute);
  } else {
    std::snprintf(buf, sizeof buf, "%ldd%ldh", d / kDay, (d % kDay) / kHour);
  }
  return buf;
}

SimTime study_start() { return from_date(2014, 12, 1); }
SimTime study_end() { return from_date(2017, 4, 1); }
SimTime focus_start() { return from_date(2016, 8, 1); }
SimTime focus_end() { return from_date(2017, 4, 1); }
SimTime march2017_start() { return from_date(2017, 3, 1); }
SimTime march2017_end() { return from_date(2017, 4, 1); }

}  // namespace bgpbh::util
