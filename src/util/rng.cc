#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace bgpbh::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method, with rejection for exactness.
  std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::pareto(double xm, double alpha) {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n <= 1) return 0;
  // Rejection sampling against the envelope 1/(k+1)^s using the inverse
  // CDF of the continuous analogue; exact for all n and s > 0.
  const double nd = static_cast<double>(n);
  if (s == 1.0) {
    const double logn1 = std::log(nd + 1.0);
    for (;;) {
      double u = uniform01();
      double x = std::exp(u * logn1) - 1.0;  // continuous in [0, n)
      std::size_t k = static_cast<std::size_t>(x);
      if (k >= n) continue;
      double accept = (std::log(static_cast<double>(k) + 2.0) -
                       std::log(static_cast<double>(k) + 1.0)) *
                      (static_cast<double>(k) + 1.0);
      if (bernoulli(accept)) return k;
    }
  }
  const double one_ms = 1.0 - s;
  const double norm = (std::pow(nd + 1.0, one_ms) - 1.0) / one_ms;
  for (;;) {
    double u = uniform01();
    double x = std::pow(u * norm * one_ms + 1.0, 1.0 / one_ms) - 1.0;
    std::size_t k = static_cast<std::size_t>(x);
    if (k >= n) continue;
    double hi = std::pow(static_cast<double>(k) + 2.0, one_ms);
    double lo = std::pow(static_cast<double>(k) + 1.0, one_ms);
    double mass = (hi - lo) / one_ms;
    double envelope = std::pow(static_cast<double>(k) + 1.0, -s);
    if (bernoulli(mass / envelope)) return k;
  }
}

std::size_t Rng::weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double x = uniform01() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  k = std::min(k, n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be drawn.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(uniform(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::fork(std::uint64_t label) const {
  SplitMix64 sm(s_[0] ^ rotl(s_[3], 13) ^ (label * 0x9e3779b97f4a7c15ULL));
  return Rng(sm.next());
}

}  // namespace bgpbh::util
