// Simulation time: seconds since the Unix epoch (UTC), int64.
//
// The study window matches the paper: the longitudinal analysis runs
// December 2014 .. March 2017; the focus window is August 2016 .. March
// 2017; the "March 2017" snapshot is used for the dataset overview.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace bgpbh::util {

using SimTime = std::int64_t;  // seconds since 1970-01-01T00:00:00Z

// Wall-clock nanoseconds since the Unix epoch — the e2e latency stamp
// carried on FeedUpdates from the producer edge to event close and sink
// delivery.  Wall clock (not steady) so the stamp stays meaningful
// across process boundaries in the shard fabric.
inline std::uint64_t wall_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

inline constexpr SimTime kSecond = 1;
inline constexpr SimTime kMinute = 60;
inline constexpr SimTime kHour = 3600;
inline constexpr SimTime kDay = 86400;
inline constexpr SimTime kWeek = 7 * kDay;

// Civil date (proleptic Gregorian, UTC).
struct Date {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  friend bool operator==(const Date&, const Date&) = default;
};

// Days since the epoch for a civil date (Howard Hinnant's algorithm).
std::int64_t days_from_civil(int y, int m, int d);

// Inverse of days_from_civil.
Date civil_from_days(std::int64_t z);

// Midnight UTC of the given civil date.
SimTime from_date(int y, int m, int d);

// Convenience: from date plus time-of-day.
SimTime from_datetime(int y, int m, int d, int hh, int mm, int ss);

// Calendar date containing the given time.
Date to_date(SimTime t);

// Day index (days since epoch) of the given time.
std::int64_t day_index(SimTime t);

// "YYYY-MM-DD" / "YYYY-MM-DDTHH:MM:SSZ".
std::string format_date(SimTime t);
std::string format_datetime(SimTime t);

// Human duration, e.g. "1m", "2h30m", "3d".
std::string format_duration(SimTime d);

// Paper-defined anchors.
inline constexpr int kStudyStartYear = 2014, kStudyStartMonth = 12;
inline constexpr int kStudyEndYear = 2017, kStudyEndMonth = 3;

SimTime study_start();        // 2014-12-01
SimTime study_end();          // 2017-04-01 (exclusive)
SimTime focus_start();        // 2016-08-01
SimTime focus_end();          // 2017-04-01 (exclusive)
SimTime march2017_start();    // 2017-03-01
SimTime march2017_end();      // 2017-04-01 (exclusive)

}  // namespace bgpbh::util
