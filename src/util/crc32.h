// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte spans.
//
// Integrity check for the persistent event store's on-disk records and
// segment footers (src/storage/): every record carries the CRC of its
// version byte + payload, so a torn or bit-flipped tail is detected and
// truncated on recovery instead of decoding into garbage events.
#pragma once

#include <cstdint>
#include <span>

namespace bgpbh::util {

// CRC of `data`; chain calls by passing the previous result as `seed`
// (the seed is the running CRC, not the raw register value).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

}  // namespace bgpbh::util
