#include "util/retry.h"

#include <algorithm>

#include "util/rng.h"

namespace bgpbh::util {

std::chrono::nanoseconds RetryPolicy::delay(std::size_t attempt) const {
  if (attempt == 0) attempt = 1;
  const std::int64_t base = std::max<std::int64_t>(base_delay.count(), 0);
  const std::int64_t cap = std::max<std::int64_t>(max_delay.count(), base);
  // Saturating doubling: past 62 shifts (or past the cap) the raw
  // delay is pinned to the cap, so huge attempt counts never overflow.
  std::int64_t raw = cap;
  const std::size_t shift = attempt - 1;
  if (base > 0 && shift < 62 && base <= (cap >> std::min<std::size_t>(shift, 62))) {
    raw = base << shift;
  } else if (base == 0) {
    raw = 0;
  }
  raw = std::min(raw, cap);
  const double j = std::clamp(jitter, 0.0, 1.0);
  if (j == 0.0 || raw == 0) return std::chrono::nanoseconds(raw);
  // Deterministic jitter: hash (seed, attempt) to a factor in
  // [1-j, 1+j].  SplitMix64 output / 2^64 is uniform in [0, 1).
  SplitMix64 mix(seed ^ (0x9e3779b97f4a7c15ULL * attempt));
  const double u =
      static_cast<double>(mix.next() >> 11) * (1.0 / 9007199254740992.0);
  const double factor = 1.0 - j + 2.0 * j * u;
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(raw) * factor));
}

}  // namespace bgpbh::util
