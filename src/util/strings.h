// Small string utilities used across the library (parsing IRR objects,
// formatting report tables, tokenizing operator documentation).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bgpbh::util {

// Split on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

// Split on any whitespace run; drops empty fields.
std::vector<std::string_view> split_ws(std::string_view s);

std::string_view trim(std::string_view s);
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool contains_icase(std::string_view haystack, std::string_view needle);

// Parse a non-negative integer; returns false on any non-digit or overflow.
bool parse_u32(std::string_view s, std::uint32_t& out);
bool parse_u64(std::string_view s, std::uint64_t& out);

// printf-style convenience returning std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace bgpbh::util
