// Tiny leveled structured logger: one key=value line per event on
// stderr, so example binaries and operational tools stop mixing printf
// and std::cerr for status output and their logs stay grep/awk-able.
//
//   util::Log(util::LogLevel::kInfo, "live_monitor")
//       .msg("replay complete")
//       .kv("updates", replayed)
//       .kv("shards", 4);
//   // -> level=info component=live_monitor msg="replay complete"
//   //    updates=398624 shards=4
//
// The line is buffered in the Log object and emitted by a single
// fputs() in the destructor, so concurrent loggers never interleave
// within a line.  The threshold comes from the BGPBH_LOG environment
// variable — debug | info (default) | warn | error | off — read once.
// Below-threshold lines cost one branch and build nothing.
//
// This is operator/status logging; it is deliberately not the metrics
// path (src/telemetry/) — counters belong in the registry, events in
// the log.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

namespace bgpbh::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

inline LogLevel log_threshold() {
  static const LogLevel threshold = [] {
    const char* env = std::getenv("BGPBH_LOG");
    if (!env) return LogLevel::kInfo;
    if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
    if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
    if (std::strcmp(env, "error") == 0) return LogLevel::kError;
    if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
    return LogLevel::kInfo;
  }();
  return threshold;
}

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_threshold()) &&
         log_threshold() != LogLevel::kOff;
}

class Log {
 public:
  Log(LogLevel level, std::string_view component)
      : enabled_(log_enabled(level)) {
    if (!enabled_) return;
    line_ = "level=";
    line_ += level_name(level);
    line_ += " component=";
    line_ += component;
  }

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  ~Log() {
    if (!enabled_) return;
    line_ += '\n';
    std::fputs(line_.c_str(), stderr);
  }

  // Free-text message; quoted, emitted as msg="...".
  Log& msg(std::string_view text) { return kv("msg", text); }

  Log& kv(std::string_view key, std::string_view value) {
    if (!enabled_) return *this;
    line_ += ' ';
    line_ += key;
    line_ += '=';
    const bool quote =
        value.find(' ') != std::string_view::npos || value.empty();
    if (quote) line_ += '"';
    line_ += value;
    if (quote) line_ += '"';
    return *this;
  }
  Log& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  Log& kv(std::string_view key, const std::string& value) {
    return kv(key, std::string_view(value));
  }
  Log& kv(std::string_view key, bool value) {
    return kv(key, value ? std::string_view("true") : std::string_view("false"));
  }
  Log& kv(std::string_view key, double value) {
    if (!enabled_) return *this;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.4g", value);
    return kv(key, std::string_view(buf));
  }
  template <typename T>
    requires std::is_integral_v<T>
  Log& kv(std::string_view key, T value) {
    if (!enabled_) return *this;
    char buf[32];
    if constexpr (std::is_signed_v<T>) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(value));
    }
    return kv(key, std::string_view(buf));
  }

 private:
  static const char* level_name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      case LogLevel::kOff: return "off";
    }
    return "info";
  }

  bool enabled_;
  std::string line_;
};

// Token-bucket limiter for log lines emitted from retry/backoff loops,
// where one stuck disk or collector would otherwise flood stderr with
// thousands of identical warnings.  Intended use is one static limiter
// per call site:
//
//   static util::LogRateLimiter limit(/*per_second=*/1.0, /*burst=*/5);
//   if (limit.allow()) {
//     util::Log(util::LogLevel::kWarn, "spill")
//         .msg("append failed; backing off")
//         .kv("suppressed", limit.last_suppressed());
//   }
//
// allow() refills `per_second` tokens per second up to `burst` and
// spends one per permitted line.  last_suppressed() reports how many
// calls were denied between the two most recent permits, so the next
// emitted line can account for the gap.  Thread-safe; the overload
// taking an explicit time point exists for deterministic tests.
class LogRateLimiter {
 public:
  explicit LogRateLimiter(double per_second, double burst = 5.0)
      : per_second_(per_second < 0.0 ? 0.0 : per_second),
        capacity_(burst < 1.0 ? 1.0 : burst),
        tokens_(capacity_) {}

  bool allow() { return allow(std::chrono::steady_clock::now()); }

  bool allow(std::chrono::steady_clock::time_point now) {
    std::lock_guard<std::mutex> lock(mu_);
    if (primed_) {
      const double dt =
          std::chrono::duration<double>(now - last_).count();
      if (dt > 0.0) tokens_ = std::min(capacity_, tokens_ + dt * per_second_);
    }
    primed_ = true;
    last_ = now;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      last_suppressed_ = run_;
      run_ = 0;
      return true;
    }
    ++run_;
    ++total_suppressed_;
    return false;
  }

  // Denied calls between the two most recent permitted ones.
  std::uint64_t last_suppressed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_suppressed_;
  }

  // Denied calls over the limiter's lifetime.
  std::uint64_t total_suppressed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_suppressed_;
  }

 private:
  const double per_second_;
  const double capacity_;
  mutable std::mutex mu_;
  double tokens_;
  bool primed_ = false;
  std::chrono::steady_clock::time_point last_{};
  std::uint64_t run_ = 0;
  std::uint64_t last_suppressed_ = 0;
  std::uint64_t total_suppressed_ = 0;
};

}  // namespace bgpbh::util
