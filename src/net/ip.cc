#include "net/ip.h"

#include <cstdio>

#include "util/strings.h"

namespace bgpbh::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  auto parts = util::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (auto part : parts) {
    std::uint32_t octet = 0;
    if (part.empty() || part.size() > 3) return std::nullopt;
    if (!util::parse_u32(part, octet) || octet > 255) return std::nullopt;
    // Reject leading zeros like "01" (ambiguous octal forms).
    if (part.size() > 1 && part[0] == '0') return std::nullopt;
    value = (value << 8) | octet;
  }
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", value_ >> 24,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

namespace {
bool parse_hex_group(std::string_view s, std::uint16_t& out) {
  if (s.empty() || s.size() > 4) return false;
  std::uint32_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
    else return false;
  }
  out = static_cast<std::uint16_t>(v);
  return true;
}
}  // namespace

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view s) {
  // Split on "::" (at most one).
  std::size_t dc = s.find("::");
  std::vector<std::string_view> head, tail;
  if (dc != std::string_view::npos) {
    if (s.find("::", dc + 1) != std::string_view::npos) return std::nullopt;
    std::string_view left = s.substr(0, dc);
    std::string_view right = s.substr(dc + 2);
    if (!left.empty()) head = util::split(left, ':');
    if (!right.empty()) tail = util::split(right, ':');
  } else {
    head = util::split(s, ':');
    if (head.size() != 8) return std::nullopt;
  }
  if (head.size() + tail.size() > 8) return std::nullopt;
  if (dc == std::string_view::npos && head.size() != 8) return std::nullopt;
  if (dc != std::string_view::npos && head.size() + tail.size() == 8)
    return std::nullopt;  // "::" must compress at least one group

  Bytes b{};
  for (std::size_t i = 0; i < head.size(); ++i) {
    std::uint16_t g = 0;
    if (!parse_hex_group(head[i], g)) return std::nullopt;
    b[2 * i] = static_cast<std::uint8_t>(g >> 8);
    b[2 * i + 1] = static_cast<std::uint8_t>(g & 0xff);
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    std::uint16_t g = 0;
    if (!parse_hex_group(tail[i], g)) return std::nullopt;
    std::size_t pos = 8 - tail.size() + i;
    b[2 * pos] = static_cast<std::uint8_t>(g >> 8);
    b[2 * pos + 1] = static_cast<std::uint8_t>(g & 0xff);
  }
  return Ipv6Addr(b);
}

std::string Ipv6Addr::to_string() const {
  // RFC 5952: compress the longest run of zero groups (>= 2), lowercase hex.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(static_cast<unsigned>(i)) == 0) {
      int j = i;
      while (j < 8 && group(static_cast<unsigned>(j)) == 0) ++j;
      if (j - i > best_len) {
        best_len = j - i;
        best_start = i;
      }
      i = j;
    } else {
      ++i;
    }
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof buf, "%x", group(static_cast<unsigned>(i)));
    out += buf;
    ++i;
  }
  return out;
}

std::optional<IpAddr> IpAddr::parse(std::string_view s) {
  if (s.find(':') != std::string_view::npos) {
    auto v6 = Ipv6Addr::parse(s);
    if (v6) return IpAddr(*v6);
    return std::nullopt;
  }
  auto v4 = Ipv4Addr::parse(s);
  if (v4) return IpAddr(*v4);
  return std::nullopt;
}

std::string IpAddr::to_string() const {
  return is_v4() ? v4().to_string() : v6().to_string();
}

}  // namespace bgpbh::net
