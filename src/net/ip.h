// IPv4 / IPv6 address value types.
//
// Addresses are held in host-order integral form (IPv4: uint32, IPv6:
// 16 bytes) and are trivially copyable.  Parsing is strict (no leading
// zeros beyond standard dotted-quad, no whitespace).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace bgpbh::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  static std::optional<Ipv4Addr> parse(std::string_view s);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  // The i-th most significant bit (0 = MSB). i < 32.
  constexpr bool bit(unsigned i) const { return (value_ >> (31 - i)) & 1u; }

  friend auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) = default;

 private:
  std::uint32_t value_ = 0;
};

class Ipv6Addr {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr Ipv6Addr() : bytes_{} {}
  constexpr explicit Ipv6Addr(const Bytes& b) : bytes_(b) {}

  // Accepts full and "::"-compressed textual form (no embedded IPv4).
  static std::optional<Ipv6Addr> parse(std::string_view s);

  const Bytes& bytes() const { return bytes_; }
  std::string to_string() const;  // RFC 5952 canonical form

  // The i-th most significant bit (0 = MSB). i < 128.
  constexpr bool bit(unsigned i) const {
    return (bytes_[i / 8] >> (7 - i % 8)) & 1u;
  }

  // 16-bit group g (0..7), host order.
  constexpr std::uint16_t group(unsigned g) const {
    return static_cast<std::uint16_t>((bytes_[2 * g] << 8) | bytes_[2 * g + 1]);
  }

  friend auto operator<=>(const Ipv6Addr&, const Ipv6Addr&) = default;

 private:
  Bytes bytes_;
};

// Either family. Variant order fixes IPv4 < IPv6 for ordering purposes.
class IpAddr {
 public:
  IpAddr() : v_(Ipv4Addr{}) {}
  IpAddr(Ipv4Addr a) : v_(a) {}  // NOLINT: implicit by design
  IpAddr(Ipv6Addr a) : v_(a) {}  // NOLINT: implicit by design

  static std::optional<IpAddr> parse(std::string_view s);

  bool is_v4() const { return std::holds_alternative<Ipv4Addr>(v_); }
  bool is_v6() const { return !is_v4(); }
  const Ipv4Addr& v4() const { return std::get<Ipv4Addr>(v_); }
  const Ipv6Addr& v6() const { return std::get<Ipv6Addr>(v_); }

  unsigned max_len() const { return is_v4() ? 32 : 128; }
  bool bit(unsigned i) const { return is_v4() ? v4().bit(i) : v6().bit(i); }

  std::string to_string() const;

  friend auto operator<=>(const IpAddr&, const IpAddr&) = default;

 private:
  std::variant<Ipv4Addr, Ipv6Addr> v_;
};

}  // namespace bgpbh::net
