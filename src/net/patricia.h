// Path-compressed binary trie (Patricia trie) keyed by CIDR prefixes.
//
// Used for: bogon filtering, origin lookup, customer-cone membership
// tests, and longest-prefix-match forwarding in the data-plane
// simulator.  One trie holds a single address family; PrefixTable
// below wraps a v4 + v6 pair.
#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <vector>

#include "net/prefix.h"

namespace bgpbh::net {

template <typename V>
class PatriciaTrie {
 public:
  PatriciaTrie() = default;

  // Inserts or overwrites. Returns true if a new entry was created.
  bool insert(const Prefix& p, V value) {
    Node* n = find_node(p, /*create=*/true);
    bool fresh = !n->has_value;
    n->has_value = true;
    n->value = std::move(value);
    size_ += fresh ? 1 : 0;
    return fresh;
  }

  // Exact-match lookup.
  const V* find(const Prefix& p) const {
    const Node* n = find_node_const(p);
    return (n && n->has_value) ? &n->value : nullptr;
  }
  V* find(const Prefix& p) {
    Node* n = const_cast<Node*>(find_node_const(p));
    return (n && n->has_value) ? &n->value : nullptr;
  }

  // Longest-prefix match for an address. Returns nullptr if none.
  const V* lookup(const IpAddr& ip, Prefix* matched = nullptr) const {
    const Node* best = nullptr;
    const Node* n = root_.get();
    unsigned depth = 0;
    unsigned max_len = ip.max_len();
    while (n) {
      // Verify the compressed skip bits match the key.
      if (depth + n->skip_len > max_len) break;
      bool mismatch = false;
      for (unsigned i = 0; i < n->skip_len; ++i) {
        if (ip.bit(depth + i) != n->skip_bit(i)) {
          mismatch = true;
          break;
        }
      }
      if (mismatch) break;
      depth += n->skip_len;
      if (n->has_value) best = n;
      if (depth >= max_len) break;
      n = n->child[ip.bit(depth) ? 1 : 0].get();
      depth += 1;
    }
    if (best && matched) *matched = best->prefix;
    return best ? &best->value : nullptr;
  }

  // True if `ip` is covered by any stored prefix.
  bool covered(const IpAddr& ip) const { return lookup(ip) != nullptr; }

  // Removes an exact prefix. Returns true if it existed.
  bool erase(const Prefix& p) {
    Node* n = const_cast<Node*>(find_node_const(p));
    if (!n || !n->has_value) return false;
    n->has_value = false;
    n->value = V{};
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // In-order visit of all stored (prefix, value) pairs.
  template <typename F>
  void for_each(F&& f) const {
    visit(root_.get(), f);
  }

  // All stored prefixes covering `ip`, shortest first.
  std::vector<Prefix> all_matches(const IpAddr& ip) const {
    std::vector<Prefix> out;
    const Node* n = root_.get();
    unsigned depth = 0;
    unsigned max_len = ip.max_len();
    while (n) {
      if (depth + n->skip_len > max_len) break;
      bool mismatch = false;
      for (unsigned i = 0; i < n->skip_len; ++i) {
        if (ip.bit(depth + i) != n->skip_bit(i)) {
          mismatch = true;
          break;
        }
      }
      if (mismatch) break;
      depth += n->skip_len;
      if (n->has_value) out.push_back(n->prefix);
      if (depth >= max_len) break;
      n = n->child[ip.bit(depth) ? 1 : 0].get();
      depth += 1;
    }
    return out;
  }

  void clear() {
    root_.reset();
    size_ = 0;
  }

 private:
  struct Node {
    // Path compression: after the branch bit that led here, `skip_len`
    // further bits of `prefix` must match (bits [depth, depth+skip_len)).
    Prefix prefix;  // the full prefix ending at this node
    unsigned skip_len = 0;
    unsigned depth_end = 0;  // prefix length at this node
    bool has_value = false;
    V value{};
    std::unique_ptr<Node> child[2];

    bool skip_bit(unsigned i) const {
      return prefix.addr().bit(depth_end - skip_len + i);
    }
  };

  // Walk/extend the trie toward prefix p. For simplicity and
  // correctness we implement path compression lazily: nodes are created
  // per divergence point; a chain of single-child value-less nodes is
  // represented by skip bits.
  Node* find_node(const Prefix& p, bool create) {
    if (!root_) {
      if (!create) return nullptr;
      root_ = std::make_unique<Node>();
      root_->prefix = Prefix(p.addr(), 0);
      root_->skip_len = 0;
      root_->depth_end = 0;
    }
    Node* n = root_.get();
    unsigned depth = 0;
    for (;;) {
      // Match the node's skip bits against p.
      unsigned common = 0;
      while (common < n->skip_len && depth + common < p.len() &&
             p.addr().bit(depth + common) == n->skip_bit(common)) {
        ++common;
      }
      if (common < n->skip_len) {
        // Divergence inside the compressed path: split the node.
        if (!create) return nullptr;
        n = split(n, depth, common);
        // After split, n covers exactly depth+common bits.
        depth += common;
        if (depth == p.len()) return n;
        // Continue by creating the branch below.
        bool b = p.addr().bit(depth);
        if (!n->child[b]) {
          n->child[b] = make_leaf(p, depth + 1);
          return n->child[b].get();
        }
        n = n->child[b].get();
        depth += 1;
        continue;
      }
      depth += n->skip_len;
      if (depth == p.len()) return n;
      assert(depth < p.len());
      bool b = p.addr().bit(depth);
      if (!n->child[b]) {
        if (!create) return nullptr;
        n->child[b] = make_leaf(p, depth + 1);
        return n->child[b].get();
      }
      n = n->child[b].get();
      depth += 1;
    }
  }

  const Node* find_node_const(const Prefix& p) const {
    return const_cast<PatriciaTrie*>(this)->find_node(p, /*create=*/false);
  }

  // Create a leaf holding prefix p; the branch bit consumed one bit at
  // `branch_depth-1`, the leaf's skip covers [branch_depth, p.len()).
  std::unique_ptr<Node> make_leaf(const Prefix& p, unsigned branch_depth) {
    auto leaf = std::make_unique<Node>();
    leaf->prefix = p;
    leaf->depth_end = p.len();
    leaf->skip_len = p.len() - branch_depth;
    return leaf;
  }

  // Split node n (entered at `depth`) after `common` matched skip bits.
  // Returns the new upper node covering depth+common bits.
  Node* split(Node* n, unsigned depth, unsigned common) {
    auto upper = std::make_unique<Node>();
    upper->prefix = n->prefix.parent(static_cast<std::uint8_t>(depth + common));
    upper->depth_end = depth + common;
    upper->skip_len = common;

    // Lower node keeps the original contents; the branch bit at
    // depth+common is consumed by the child link.
    bool lower_bit = n->prefix.addr().bit(depth + common);
    unsigned old_skip = n->skip_len;
    n->skip_len = old_skip - common - 1;

    // Find n within its parent and swap in `upper`.
    // We can only do this via the return-path of find_node; instead we
    // splice by moving n's contents into a fresh node under upper.
    auto lower = std::make_unique<Node>();
    lower->prefix = n->prefix;
    lower->depth_end = n->depth_end;
    lower->skip_len = n->skip_len;
    lower->has_value = n->has_value;
    lower->value = std::move(n->value);
    lower->child[0] = std::move(n->child[0]);
    lower->child[1] = std::move(n->child[1]);
    upper->child[lower_bit] = std::move(lower);

    // Replace n's contents with upper's.
    n->prefix = upper->prefix;
    n->depth_end = upper->depth_end;
    n->skip_len = upper->skip_len;
    n->has_value = false;
    n->value = V{};
    n->child[0] = std::move(upper->child[0]);
    n->child[1] = std::move(upper->child[1]);
    return n;
  }

  template <typename F>
  static void visit(const Node* n, F& f) {
    if (!n) return;
    if (n->has_value) f(n->prefix, n->value);
    visit(n->child[0].get(), f);
    visit(n->child[1].get(), f);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

// Dual-family prefix table.
template <typename V>
class PrefixTable {
 public:
  bool insert(const Prefix& p, V value) {
    return tree(p.is_v4()).insert(p, std::move(value));
  }
  const V* find(const Prefix& p) const { return tree(p.is_v4()).find(p); }
  V* find(const Prefix& p) { return tree(p.is_v4()).find(p); }
  const V* lookup(const IpAddr& ip, Prefix* matched = nullptr) const {
    return tree(ip.is_v4()).lookup(ip, matched);
  }
  bool covered(const IpAddr& ip) const { return tree(ip.is_v4()).covered(ip); }
  bool erase(const Prefix& p) { return tree(p.is_v4()).erase(p); }
  std::size_t size() const { return v4_.size() + v6_.size(); }
  template <typename F>
  void for_each(F&& f) const {
    v4_.for_each(f);
    v6_.for_each(f);
  }
  std::vector<Prefix> all_matches(const IpAddr& ip) const {
    return tree(ip.is_v4()).all_matches(ip);
  }
  void clear() {
    v4_.clear();
    v6_.clear();
  }

 private:
  PatriciaTrie<V>& tree(bool v4) { return v4 ? v4_ : v6_; }
  const PatriciaTrie<V>& tree(bool v4) const { return v4 ? v4_ : v6_; }

  PatriciaTrie<V> v4_;
  PatriciaTrie<V> v6_;
};

}  // namespace bgpbh::net
