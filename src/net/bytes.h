// Big-endian (network byte order) buffer reader/writer used by the BGP
// UPDATE codec, the MRT-subset codec, and the IPFIX codec.
//
// BufReader never throws: all accessors return false / nullopt on
// truncation and latch an error flag, so callers can parse a whole
// record and check ok() once at the end (the common pattern in wire
// parsers, avoids deep error plumbing).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace bgpbh::net {

class BufWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void str(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  // Patch a previously written big-endian u16/u32 at `pos`.
  void patch_u16(std::size_t pos, std::uint16_t v) {
    buf_[pos] = static_cast<std::uint8_t>(v >> 8);
    buf_[pos + 1] = static_cast<std::uint8_t>(v);
  }
  void patch_u32(std::size_t pos, std::uint32_t v) {
    patch_u16(pos, static_cast<std::uint16_t>(v >> 16));
    patch_u16(pos + 2, static_cast<std::uint16_t>(v));
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint16_t u16() { return read<std::uint16_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }

  // Reads n raw bytes; returns empty span (and latches error) on truncation.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (remaining() < n) {
      error_ = true;
      pos_ = data_.size();
      return {};
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) { (void)bytes(n); }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t pos() const { return pos_; }
  bool ok() const { return !error_; }
  bool at_end() const { return pos_ == data_.size(); }

  // Sub-reader over the next n bytes (advances this reader).
  BufReader sub(std::size_t n) {
    auto b = bytes(n);
    return BufReader(b);
  }

 private:
  template <typename T>
  T read() {
    if (remaining() < sizeof(T)) {
      error_ = true;
      pos_ = data_.size();
      return T{};
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = (v << 8) | data_[pos_ + i];
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool error_ = false;
};

}  // namespace bgpbh::net
