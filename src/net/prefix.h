// CIDR prefixes over IPv4/IPv6 with containment tests and canonical
// (host-bits-zeroed) representation.  /32 IPv4 prefixes — host routes —
// are the dominant unit of blackholing in the paper (98% of blackholed
// prefixes), so Prefix is optimized for cheap copying and hashing.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip.h"

namespace bgpbh::net {

class Prefix {
 public:
  Prefix() = default;
  // Canonicalizes: bits past `len` are cleared.
  Prefix(IpAddr addr, std::uint8_t len);

  // "10.0.0.0/8" or "2001:db8::/32".
  static std::optional<Prefix> parse(std::string_view s);
  // Host route for a single address (/32 or /128).
  static Prefix host_route(IpAddr addr);

  const IpAddr& addr() const { return addr_; }
  std::uint8_t len() const { return len_; }
  bool is_v4() const { return addr_.is_v4(); }
  unsigned family_max_len() const { return addr_.max_len(); }
  bool is_host_route() const { return len_ == family_max_len(); }

  // True if `ip` is inside this prefix (same family required).
  bool contains(const IpAddr& ip) const;
  // True if `other` is equal to or more specific than this prefix.
  bool covers(const Prefix& other) const;
  // Strictly more specific than /24 (the blackholing signature; only
  // meaningful for IPv4 in the paper, IPv6 analogue uses /48).
  bool more_specific_than(std::uint8_t len) const { return len_ > len; }

  // The enclosing prefix of given shorter length.
  Prefix parent(std::uint8_t new_len) const;

  std::string to_string() const;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  IpAddr addr_;
  std::uint8_t len_ = 0;
};

struct PrefixHash {
  std::size_t operator()(const Prefix& p) const noexcept;
};

struct IpAddrHash {
  std::size_t operator()(const IpAddr& a) const noexcept;
};

// Boost-style combine shared by the composite-key hashes built on the
// hashes above (bgp::PeerKeyHash, engine state keys, shard routing).
inline std::size_t hash_combine(std::size_t h, std::size_t v) noexcept {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

// Number of addresses covered by an IPv4 prefix.
std::uint64_t ipv4_prefix_size(const Prefix& p);

}  // namespace bgpbh::net
