#include "net/prefix.h"

#include "util/strings.h"

namespace bgpbh::net {

namespace {
Ipv4Addr mask_v4(Ipv4Addr a, std::uint8_t len) {
  if (len == 0) return Ipv4Addr(0);
  std::uint32_t mask = len >= 32 ? 0xffffffffu : ~((1u << (32 - len)) - 1u);
  return Ipv4Addr(a.value() & mask);
}

Ipv6Addr mask_v6(const Ipv6Addr& a, std::uint8_t len) {
  Ipv6Addr::Bytes b = a.bytes();
  for (unsigned i = 0; i < 16; ++i) {
    unsigned bit_start = i * 8;
    if (bit_start + 8 <= len) continue;
    if (bit_start >= len) {
      b[i] = 0;
    } else {
      unsigned keep = len - bit_start;
      b[i] &= static_cast<std::uint8_t>(0xff << (8 - keep));
    }
  }
  return Ipv6Addr(b);
}
}  // namespace

Prefix::Prefix(IpAddr addr, std::uint8_t len) : len_(len) {
  if (addr.is_v4()) {
    if (len_ > 32) len_ = 32;
    addr_ = IpAddr(mask_v4(addr.v4(), len_));
  } else {
    if (len_ > 128) len_ = 128;
    addr_ = IpAddr(mask_v6(addr.v6(), len_));
  }
}

std::optional<Prefix> Prefix::parse(std::string_view s) {
  std::size_t slash = s.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IpAddr::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  std::uint32_t len = 0;
  if (!util::parse_u32(s.substr(slash + 1), len)) return std::nullopt;
  if (len > addr->max_len()) return std::nullopt;
  return Prefix(*addr, static_cast<std::uint8_t>(len));
}

Prefix Prefix::host_route(IpAddr addr) {
  return Prefix(addr, static_cast<std::uint8_t>(addr.max_len()));
}

bool Prefix::contains(const IpAddr& ip) const {
  if (ip.is_v4() != addr_.is_v4()) return false;
  for (unsigned i = 0; i < len_; ++i) {
    if (ip.bit(i) != addr_.bit(i)) return false;
  }
  return true;
}

bool Prefix::covers(const Prefix& other) const {
  if (other.len_ < len_) return false;
  if (other.is_v4() != is_v4()) return false;
  return contains(other.addr_);
}

Prefix Prefix::parent(std::uint8_t new_len) const {
  if (new_len >= len_) return *this;
  return Prefix(addr_, new_len);
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

std::size_t IpAddrHash::operator()(const IpAddr& a) const noexcept {
  // FNV-1a over the address bytes plus a family tag.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  if (a.is_v4()) {
    mix(4);
    std::uint32_t v = a.v4().value();
    mix(static_cast<std::uint8_t>(v >> 24));
    mix(static_cast<std::uint8_t>(v >> 16));
    mix(static_cast<std::uint8_t>(v >> 8));
    mix(static_cast<std::uint8_t>(v));
  } else {
    mix(6);
    for (std::uint8_t byte : a.v6().bytes()) mix(byte);
  }
  return static_cast<std::size_t>(h);
}

std::size_t PrefixHash::operator()(const Prefix& p) const noexcept {
  std::size_t h = IpAddrHash{}(p.addr());
  return h ^ (static_cast<std::size_t>(p.len()) * 0x9e3779b97f4a7c15ULL);
}

std::uint64_t ipv4_prefix_size(const Prefix& p) {
  if (!p.is_v4()) return 0;
  return 1ULL << (32 - p.len());
}

}  // namespace bgpbh::net
