#include "net/bytes.h"

// Header-only by design; this translation unit exists so the component
// has a home in the static library (and a place for future non-inline
// helpers such as checksum routines).
namespace bgpbh::net {}
