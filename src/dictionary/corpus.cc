#include "dictionary/corpus.h"

#include "util/strings.h"

namespace bgpbh::dictionary {

namespace {

using util::Rng;

// Operator phrasings for the blackholing action. The extractor matches
// on lemmas, so the corpus deliberately varies them (§4.1: "searching
// for lemmas of certain text patterns").
const char* kBlackholePhrases[] = {
    "blackhole the announced prefix",
    "black-hole this route",
    "null route the destination",
    "null-route traffic to the tagged prefix",
    "RTBH - remotely triggered blackholing",
    "discard all traffic towards this prefix (DDoS mitigation)",
    "drop traffic to the prefix at our edge (blackholing)",
    "blackholing: traffic to the prefix is sent to the null interface",
};

const char* kRegionalSuffixes[] = {
    "in Europe only", "in the US only", "in Asia only",
};

// Phrasings for non-blackhole communities.
const char* kServicePhrases[] = {
    "prepend 1x towards all peers",
    "prepend 2x towards transit providers",
    "do not announce to peers",
    "set local-preference to 80",
    "tag routes received at public peering",
    "tag routes received from customers",
    "announce to route servers only",
    "set MED to 100 towards this neighbor",
    "peering routes",  // the Level3-style 666-but-not-blackhole trap
};

std::string irr_header(Asn asn) {
  std::string out;
  out += "aut-num:        AS" + std::to_string(asn) + "\n";
  out += "as-name:        NET-" + std::to_string(asn) + "\n";
  out += "descr:          Autonomous System " + std::to_string(asn) + "\n";
  out += "remarks:        ---------------------------------------\n";
  out += "remarks:        BGP community support\n";
  out += "remarks:        ---------------------------------------\n";
  return out;
}

std::string irr_footer(Asn asn) {
  std::string out;
  out += "mnt-by:         MAINT-AS" + std::to_string(asn) + "\n";
  out += "source:         RADB\n";
  return out;
}

void append_community_remark(std::string& text, const std::string& comm,
                             const std::string& meaning, Document::Kind kind) {
  if (kind == Document::Kind::kIrr) {
    text += "remarks:        " + comm + "  - " + meaning + "\n";
  } else {
    text += "<li><b>" + comm + "</b>: " + meaning + "</li>\n";
  }
}

}  // namespace

Corpus generate_corpus(const AsGraph& graph, std::uint64_t seed) {
  Rng rng(seed ^ 0xD1C7ULL);
  Corpus corpus;
  std::size_t private_budget = 5;  // paper: 5 networks via private comm.

  for (const auto& node : graph.nodes()) {
    const auto& bp = node.blackhole;
    bool documents_blackhole =
        bp.offers_blackholing &&
        (bp.documented_in_irr || bp.documented_on_web);
    bool documents_services = !node.service_communities.empty() &&
                              rng.bernoulli(0.8);
    bool via_private = bp.offers_blackholing && !bp.documented_in_irr &&
                       !bp.documented_on_web && private_budget > 0 &&
                       rng.bernoulli(0.06);
    if (via_private) {
      corpus.private_communications.push_back(
          PrivateCommunication{node.asn, bp.communities.front()});
      --private_budget;
    }
    if (!documents_blackhole && !documents_services) continue;

    Document doc;
    doc.subject_asn = node.asn;
    doc.kind = (documents_blackhole && bp.documented_on_web)
                   ? Document::Kind::kWebPage
                   : Document::Kind::kIrr;
    std::string& text = doc.text;
    if (doc.kind == Document::Kind::kIrr) {
      text += irr_header(node.asn);
    } else {
      text += "<html><h1>AS" + std::to_string(node.asn) +
              " routing policy</h1>\n<ul>\n";
    }

    if (documents_services) {
      for (std::size_t i = 0; i < node.service_communities.size(); ++i) {
        const auto& c = node.service_communities[i];
        append_community_remark(
            text, c.to_string(),
            kServicePhrases[rng.uniform(sizeof(kServicePhrases) /
                                        sizeof(kServicePhrases[0]))],
            doc.kind);
      }
    }
    if (documents_blackhole) {
      for (std::size_t i = 0; i < bp.communities.size(); ++i) {
        std::string meaning =
            kBlackholePhrases[rng.uniform(sizeof(kBlackholePhrases) /
                                          sizeof(kBlackholePhrases[0]))];
        if (i > 0) {
          meaning += " ";
          meaning += kRegionalSuffixes[(i - 1) % 3];
        }
        append_community_remark(text, bp.communities[i].to_string(), meaning,
                                doc.kind);
      }
      if (bp.large_community) {
        append_community_remark(
            text, bp.large_community->to_string(),
            "blackhole (large community format, RFC 8092)", doc.kind);
      }
      // Meta-information (§4.1): max accepted prefix length.
      std::string meta = util::strf(
          "prefixes up to /%u are accepted when tagged for blackholing",
          bp.max_accepted_prefix_len);
      if (doc.kind == Document::Kind::kIrr) {
        text += "remarks:        " + meta + "\n";
      } else {
        text += "<p>" + meta + "</p>\n";
      }
    }
    if (doc.kind == Document::Kind::kIrr) {
      text += irr_footer(node.asn);
    } else {
      text += "</ul></html>\n";
    }
    corpus.documents.push_back(std::move(doc));
  }

  // IXP documentation: web pages (members must find it easily, §4.1).
  for (const auto& ixp : graph.ixps()) {
    if (!ixp.offers_blackholing || !ixp.documented) continue;
    Document doc;
    doc.kind = Document::Kind::kWebPage;
    doc.subject_asn = ixp.route_server_asn;
    doc.subject_is_ixp = true;
    doc.ixp_id = ixp.id;
    std::string& text = doc.text;
    text += "<html><h1>" + ixp.name + " blackholing service</h1>\n<ul>\n";
    append_community_remark(
        text, ixp.blackhole_community.to_string(),
        "blackhole: traffic to the tagged prefix is discarded at the "
        "exchange (RFC 7999)",
        doc.kind);
    text += "<p>next-hop for blackholed IPv4 prefixes: " +
            ixp.blackhole_ip_v4.to_string() + "</p>\n";
    text += "<p>next-hop for blackholed IPv6 prefixes: " +
            ixp.blackhole_ip_v6.to_string() + "</p>\n";
    text += "<p>host routes (/32) are accepted when tagged for blackholing</p>\n";
    text += "</ul></html>\n";
    corpus.documents.push_back(std::move(doc));
  }
  return corpus;
}

}  // namespace bgpbh::dictionary
