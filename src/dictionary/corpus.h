// Text corpus substrate for §4.1.
//
// The paper scrapes operator web pages and Merit RADb IRR records and
// extracts blackhole communities with NLTK-based keyword matching.  We
// generate an equivalent corpus from ground truth: RPSL `aut-num`
// objects with `remarks:` community documentation in varied operator
// phrasings, and web-page-like prose — including documentation of
// *non*-blackhole communities (the extractor's negative class, and the
// paper's "second dictionary" used for Fig 2).
#pragma once

#include <string>
#include <vector>

#include "topology/as_graph.h"
#include "util/rng.h"

namespace bgpbh::dictionary {

using topology::AsGraph;
using bgp::Asn;

struct Document {
  enum class Kind : std::uint8_t { kIrr, kWebPage };
  Kind kind = Kind::kIrr;
  Asn subject_asn = 0;        // the AS (or route-server AS for IXPs)
  bool subject_is_ixp = false;
  std::uint32_t ixp_id = 0;
  std::string text;
};

// Out-of-band knowledge (the paper's "private communication" channel,
// 5 networks).
struct PrivateCommunication {
  Asn asn = 0;
  bgp::Community community;
};

struct Corpus {
  std::vector<Document> documents;
  std::vector<PrivateCommunication> private_communications;
};

// Generates the corpus for all *documented* providers plus
// non-blackhole community documentation; undocumented providers are
// intentionally absent (they are only discoverable via the Fig-2
// prefix-length inference).
Corpus generate_corpus(const AsGraph& graph, std::uint64_t seed);

}  // namespace bgpbh::dictionary
