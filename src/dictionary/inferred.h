// Extended-dictionary inference via prefix-length signatures (§4.1
// "Possibilities for Extended Dictionary", Fig 2).
//
// Observation: blackhole communities appear almost exclusively on
// prefixes more specific than /24 (98% of blackholed prefixes are /32
// host routes), while regular communities sit on /24-or-shorter
// prefixes.  A community is *inferred* as a blackhole community when:
//   1. it predominantly tags prefixes more specific than /24,
//   2. it co-occurs at least once with a known (documented) blackhole
//      community on the same announcement,
//   3. its upper 16 bits encode a public ASN (else it cannot be mapped
//      to a provider), and
//   4. it is not already in the documented dictionary.
// Per the paper, inferred communities are reported but NOT merged into
// the documented dictionary used for inference.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bgp/community.h"
#include "bgp/update.h"
#include "dictionary/dictionary.h"
#include "topology/as_graph.h"

namespace bgpbh::dictionary {

// Per-community usage statistics accumulated over an update stream.
class CommunityUsage {
 public:
  void observe(const bgp::ObservedUpdate& update,
               const BlackholeDictionary& documented);

  struct Stats {
    std::map<std::uint8_t, std::uint64_t> prefix_len_counts;
    std::uint64_t total = 0;
    std::uint64_t cooccur_with_documented = 0;

    double fraction_more_specific_than(std::uint8_t len) const;
    // (prefix_len, fraction) pairs — one Fig 2 row.
    std::vector<std::pair<std::uint8_t, double>> length_profile() const;
  };

  const std::map<bgp::Community, Stats>& stats() const { return stats_; }

 private:
  std::map<bgp::Community, Stats> stats_;
};

struct InferredCommunity {
  bgp::Community community;
  Asn provider_asn = 0;  // upper 16 bits
  std::uint64_t occurrences = 0;
  double more_specific_fraction = 0.0;
  std::uint64_t cooccurrences = 0;
};

struct InferenceParams {
  std::uint64_t min_occurrences = 3;
  double min_more_specific_fraction = 0.98;
  std::uint64_t min_cooccurrences = 1;
};

// Run the Fig 2 inference. `graph` supplies the public-ASN check.
std::vector<InferredCommunity> infer_undocumented(
    const CommunityUsage& usage, const BlackholeDictionary& documented,
    const topology::AsGraph& graph, const InferenceParams& params = {});

}  // namespace bgpbh::dictionary
