#include "dictionary/compiled.h"

#include <algorithm>

namespace bgpbh::dictionary {

CompiledDictionary::CompiledDictionary(const BlackholeDictionary& source) {
  // Size the pools exactly up front: spans into them are taken during
  // the fill and must never be invalidated by reallocation.
  std::size_t total_providers = 0;
  std::size_t total_ixps = 0;
  for (const auto& [c, entry] : source.entries()) {
    total_providers += entry.provider_asns.size();
    total_ixps += entry.ixp_ids.size();
  }
  provider_pool_.reserve(total_providers);
  ixp_pool_.reserve(total_ixps);
  entries_.reserve(source.entries().size());

  for (const auto& [c, entry] : source.entries()) {
    EntryView view;
    if (!entry.provider_asns.empty()) {
      Asn* start = provider_pool_.data() + provider_pool_.size();
      provider_pool_.insert(provider_pool_.end(), entry.provider_asns.begin(),
                            entry.provider_asns.end());
      view.provider_asns = {start, entry.provider_asns.size()};
    }
    if (!entry.ixp_ids.empty()) {
      std::uint32_t* start = ixp_pool_.data() + ixp_pool_.size();
      ixp_pool_.insert(ixp_pool_.end(), entry.ixp_ids.begin(),
                       entry.ixp_ids.end());
      view.ixp_ids = {start, entry.ixp_ids.size()};
    }
    entries_.push_back(view);
    set_bit(classic_bits_, c.value());
  }

  // Slot table: power-of-two capacity, load factor <= 0.5.
  if (!entries_.empty()) {
    std::size_t capacity = 4;
    unsigned shift = 30;
    while (capacity < entries_.size() * 2) {
      capacity <<= 1;
      --shift;
    }
    slots_.assign(capacity, Slot{});
    slot_mask_ = capacity - 1;
    slot_shift_ = shift;
    std::uint32_t index = 1;  // 1-based; 0 marks an empty slot
    for (const auto& [c, entry] : source.entries()) {
      (void)entry;
      std::size_t i = slot_index(c.raw());
      while (slots_[i].entry_plus_one != 0) i = (i + 1) & slot_mask_;
      slots_[i] = Slot{.key = c.raw(), .entry_plus_one = index++};
    }
  }

  large_.reserve(source.large_entries().size());
  for (const auto& [c, provider] : source.large_entries()) {
    large_.push_back(LargeEntry{.global = c.global_admin(),
                                .l1 = c.local1(),
                                .l2 = c.local2(),
                                .provider = provider});
    set_bit(large_bits_, large_fingerprint(c));
  }
  // std::map order on LargeCommunity is (global, l1, l2) — already the
  // LargeEntry order, but sort defensively; build cost is irrelevant.
  std::sort(large_.begin(), large_.end());
}

std::optional<Asn> CompiledDictionary::lookup_large(bgp::LargeCommunity c) const {
  const LargeEntry probe{.global = c.global_admin(),
                         .l1 = c.local1(),
                         .l2 = c.local2(),
                         .provider = 0};
  auto it = std::lower_bound(
      large_.begin(), large_.end(), probe,
      [](const LargeEntry& a, const LargeEntry& b) {
        return std::tie(a.global, a.l1, a.l2) < std::tie(b.global, b.l1, b.l2);
      });
  if (it == large_.end() || it->global != probe.global ||
      it->l1 != probe.l1 || it->l2 != probe.l2) {
    return std::nullopt;
  }
  return it->provider;
}

}  // namespace bgpbh::dictionary
