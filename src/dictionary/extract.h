// NLP-lite community extraction (the paper's NLTK step, §4.1).
//
// Tokenizes operator documentation, finds community-shaped tokens
// ("ASN:value", "G:L1:L2"), and classifies each by keyword-lemma
// proximity within the same line/sentence: blackhole lemmas
// ("blackhole", "null route", "rtbh", "discard ... traffic") mark
// blackhole communities; everything else is recorded in the
// non-blackhole dictionary (used for Fig 2 and false-positive control).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/community.h"
#include "dictionary/corpus.h"

namespace bgpbh::dictionary {

struct ExtractedCommunity {
  Asn subject_asn = 0;
  bool subject_is_ixp = false;
  std::uint32_t ixp_id = 0;
  std::optional<bgp::Community> community;
  std::optional<bgp::LargeCommunity> large_community;
  bool is_blackhole = false;
  Document::Kind source = Document::Kind::kIrr;
  std::string scope;            // "", "EU", "US", "AS"
  std::uint8_t max_prefix_len = 32;  // meta-info when documented
};

// True if the text fragment contains a blackholing lemma.
bool contains_blackhole_lemma(std::string_view fragment);

// Extract the region scope from a fragment ("in Europe only" -> "EU").
std::string extract_scope(std::string_view fragment);

// Parse a "prefixes up to /NN ..." meta line.
std::optional<std::uint8_t> extract_max_prefix_len(std::string_view fragment);

// All community mentions in one document.
std::vector<ExtractedCommunity> extract_from_document(const Document& doc);

// Convenience over a whole corpus.
std::vector<ExtractedCommunity> extract_all(const Corpus& corpus);

}  // namespace bgpbh::dictionary
