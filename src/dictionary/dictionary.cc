#include "dictionary/dictionary.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace bgpbh::dictionary {

void BlackholeDictionary::add_provider(bgp::Community c, Asn provider,
                                       DictSource source,
                                       const std::string& scope,
                                       std::uint8_t max_len) {
  DictEntry& e = entries_[c];
  e.community = c;
  if (std::find(e.provider_asns.begin(), e.provider_asns.end(), provider) ==
      e.provider_asns.end()) {
    e.provider_asns.push_back(provider);
    std::sort(e.provider_asns.begin(), e.provider_asns.end());
  }
  e.source = source;
  if (!scope.empty()) e.scope = scope;
  e.max_prefix_len = max_len;
}

void BlackholeDictionary::add_ixp(bgp::Community c, std::uint32_t ixp_id,
                                  DictSource source) {
  DictEntry& e = entries_[c];
  e.community = c;
  if (std::find(e.ixp_ids.begin(), e.ixp_ids.end(), ixp_id) == e.ixp_ids.end()) {
    e.ixp_ids.push_back(ixp_id);
    std::sort(e.ixp_ids.begin(), e.ixp_ids.end());
  }
  e.source = source;
}

void BlackholeDictionary::add_large(bgp::LargeCommunity c, Asn provider,
                                    DictSource /*source*/) {
  large_[c] = provider;
}

const DictEntry* BlackholeDictionary::lookup(bgp::Community c) const {
  auto it = entries_.find(c);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<Asn> BlackholeDictionary::lookup_large(bgp::LargeCommunity c) const {
  auto it = large_.find(c);
  if (it == large_.end()) return std::nullopt;
  return it->second;
}

bool BlackholeDictionary::any_blackhole(const bgp::CommunitySet& comms) const {
  for (auto c : comms.classic()) {
    if (entries_.contains(c)) return true;
  }
  for (auto c : comms.large()) {
    if (large_.contains(c)) return true;
  }
  return false;
}

std::size_t BlackholeDictionary::num_providers() const {
  std::unordered_set<Asn> providers;
  for (const auto& [c, e] : entries_) {
    providers.insert(e.provider_asns.begin(), e.provider_asns.end());
  }
  for (const auto& [c, asn] : large_) providers.insert(asn);
  return providers.size();
}

std::size_t BlackholeDictionary::num_ixps() const {
  std::unordered_set<std::uint32_t> ixps;
  for (const auto& [c, e] : entries_) {
    ixps.insert(e.ixp_ids.begin(), e.ixp_ids.end());
  }
  return ixps.size();
}

std::vector<Asn> BlackholeDictionary::all_providers() const {
  std::unordered_set<Asn> providers;
  for (const auto& [c, e] : entries_) {
    providers.insert(e.provider_asns.begin(), e.provider_asns.end());
  }
  for (const auto& [c, asn] : large_) providers.insert(asn);
  std::vector<Asn> out(providers.begin(), providers.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> BlackholeDictionary::all_ixps() const {
  std::unordered_set<std::uint32_t> ixps;
  for (const auto& [c, e] : entries_) {
    ixps.insert(e.ixp_ids.begin(), e.ixp_ids.end());
  }
  std::vector<std::uint32_t> out(ixps.begin(), ixps.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::map<topology::NetworkType, BlackholeDictionary::TypeBreakdown>
BlackholeDictionary::breakdown(const topology::Registry& registry) const {
  std::map<topology::NetworkType, TypeBreakdown> out;
  // Networks per type.
  std::map<topology::NetworkType, std::unordered_set<Asn>> nets;
  std::map<topology::NetworkType, std::unordered_set<std::uint32_t>> comms;
  std::unordered_set<std::uint32_t> ixps;
  std::unordered_set<std::uint32_t> ixp_comms;
  for (const auto& [c, e] : entries_) {
    for (Asn a : e.provider_asns) {
      auto type = registry.classify(a);
      nets[type].insert(a);
      comms[type].insert(c.raw());
    }
    for (std::uint32_t ix : e.ixp_ids) {
      ixps.insert(ix);
      ixp_comms.insert(c.raw());
    }
  }
  for (const auto& [c, asn] : large_) {
    auto type = registry.classify(asn);
    nets[type].insert(asn);
    comms[type].insert(0x80000000u ^ c.global_admin());
  }
  for (auto& [type, asns] : nets) {
    out[type].networks = asns.size();
    out[type].communities = comms[type].size();
  }
  out[topology::NetworkType::kIxp].networks = ixps.size();
  out[topology::NetworkType::kIxp].communities = ixp_comms.size();
  return out;
}

BlackholeDictionary build_documented_dictionary(
    const Corpus& corpus, const topology::Registry& registry) {
  BlackholeDictionary dict;
  for (const auto& e : extract_all(corpus)) {
    if (!e.is_blackhole) continue;
    DictSource src = e.source == Document::Kind::kIrr ? DictSource::kIrr
                                                      : DictSource::kWebPage;
    if (e.subject_is_ixp) {
      if (e.community) dict.add_ixp(*e.community, e.ixp_id, src);
      continue;
    }
    if (e.community) {
      dict.add_provider(*e.community, e.subject_asn, src, e.scope,
                        e.max_prefix_len);
    } else if (e.large_community) {
      dict.add_large(*e.large_community, e.subject_asn, src);
    }
  }
  for (const auto& pc : corpus.private_communications) {
    dict.add_provider(pc.community, pc.asn, DictSource::kPrivate);
  }
  (void)registry;
  return dict;
}

LegacyDictionary make_legacy_dictionary(const topology::AsGraph& graph,
                                        double active_rate, std::uint64_t seed) {
  util::Rng rng(seed ^ 0x2008ULL);
  LegacyDictionary legacy;
  // Collect current blackhole communities; the "still active" portion of
  // the 2008 dictionary is drawn from them.
  std::vector<std::pair<Asn, bgp::Community>> current;
  for (const auto& node : graph.nodes()) {
    // Entries of the 2008 study were documented back then; the portion
    // still active today is rediscoverable in today's documentation.
    if (node.blackhole.offers_blackholing &&
        (node.blackhole.documented_in_irr || node.blackhole.documented_on_web)) {
      current.emplace_back(node.asn, node.blackhole.communities.front());
    }
  }
  constexpr std::size_t kLegacySize = 60;  // the 2008 study's 60 entries
  std::size_t active = static_cast<std::size_t>(kLegacySize * active_rate + 0.5);
  auto idx = rng.sample_indices(current.size(), std::min(active, current.size()));
  for (auto i : idx) legacy.entries.push_back(current[i]);
  // Retired communities: values no AS currently uses for anything.
  while (legacy.entries.size() < kLegacySize) {
    Asn asn = current[rng.uniform(current.size())].first;
    bgp::Community retired(static_cast<std::uint16_t>(asn & 0xFFFF),
                           static_cast<std::uint16_t>(60000 + rng.uniform(5000)));
    legacy.entries.emplace_back(asn, retired);
  }
  return legacy;
}

LegacyComparison compare_with_legacy(const BlackholeDictionary& dict,
                                     const LegacyDictionary& legacy,
                                     const topology::AsGraph& graph) {
  LegacyComparison cmp;
  cmp.total = legacy.entries.size();
  for (const auto& [asn, community] : legacy.entries) {
    const DictEntry* entry = dict.lookup(community);
    if (entry && std::find(entry->provider_asns.begin(), entry->provider_asns.end(),
                           asn) != entry->provider_asns.end()) {
      ++cmp.still_active;
      continue;
    }
    // Re-purposed? Check whether the AS now uses this value as a
    // non-blackhole service community.
    const topology::AsNode* node = graph.find(asn);
    if (node && std::find(node->service_communities.begin(),
                          node->service_communities.end(),
                          community) != node->service_communities.end()) {
      ++cmp.repurposed;
    }
  }
  return cmp;
}

}  // namespace bgpbh::dictionary
