// Compiled, immutable fast-path form of the blackhole dictionary.
//
// The engine matches *every* update's communities against the
// dictionary, yet in a realistic feed almost none carry a blackhole
// community — the lookup cost is dominated by misses.  The mutable
// BlackholeDictionary (std::map, one node allocation per entry) is the
// build/update-time representation; CompiledDictionary is the frozen
// read-path form the inference engine actually queries:
//
//   * an 8 KiB presence bitset over the 16-bit *value* half of classic
//     communities (the "666" of "3356:666"), so a non-blackhole update
//     costs one bit-test per community and touches no cold memory —
//     blackhole values cluster (666, 66, 999, ...), so the bitset is
//     extremely sparse and a miss almost never proceeds further;
//   * a sorted flat key array + branchless binary search for confirmed
//     candidates, with provider/IXP lists packed into dense pools and
//     exposed as std::span views (no per-entry allocation, no pointer
//     chasing into map nodes);
//   * the same two-level treatment for RFC 8092 large communities,
//     keyed on a 16-bit fingerprint of the 96-bit value.
//
// The compiled form never produces a false negative: every community
// the source dictionary knows passes the bitset and resolves to an
// identical entry (tests/test_compiled_dictionary.cc fuzzes this
// equivalence).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dictionary/dictionary.h"

namespace bgpbh::dictionary {

// Allocation-free view of one dictionary entry's detection-relevant
// fields.  Both the compiled fast path and the std::map slow path
// produce this shape, so the engine's inference logic is written once
// (and the two paths stay byte-for-byte comparable).
struct EntryView {
  std::span<const Asn> provider_asns;
  std::span<const std::uint32_t> ixp_ids;

  bool ambiguous() const { return provider_asns.size() > 1; }
};

class CompiledDictionary {
 public:
  CompiledDictionary() = default;
  explicit CompiledDictionary(const BlackholeDictionary& source);

  // Copying would duplicate the pools while the EntryView spans kept
  // pointing into the source object's storage. Moves transfer the pool
  // buffers, so the spans stay valid.
  CompiledDictionary(const CompiledDictionary&) = delete;
  CompiledDictionary& operator=(const CompiledDictionary&) = delete;
  CompiledDictionary(CompiledDictionary&&) = default;
  CompiledDictionary& operator=(CompiledDictionary&&) = default;

  // One bit-test: can `c` possibly be a blackhole community?  False
  // positives allowed (same 16-bit value half as a real entry), false
  // negatives never.
  bool maybe_blackhole(bgp::Community c) const {
    return test_bit(classic_bits_, c.value());
  }
  bool maybe_blackhole(bgp::LargeCommunity c) const {
    return test_bit(large_bits_, large_fingerprint(c));
  }

  // True if any community in the set may be a blackhole community.
  // Pure bit-tests over hot cache lines; the engine consults this
  // before doing any per-update path work.
  bool prefilter(const bgp::CommunitySet& comms) const {
    for (auto c : comms.classic()) {
      if (maybe_blackhole(c)) return true;
    }
    for (auto c : comms.large()) {
      if (maybe_blackhole(c)) return true;
    }
    return false;
  }

  // Exact lookup; nullptr when `c` is not a blackhole community.  The
  // returned view stays valid for the lifetime of this object.
  const EntryView* lookup(bgp::Community c) const;
  std::optional<Asn> lookup_large(bgp::LargeCommunity c) const;

  std::size_t num_classic() const { return keys_.size(); }
  std::size_t num_large() const { return large_.size(); }

 private:
  static constexpr std::size_t kBitWords = 65536 / 64;  // 8 KiB per set

  static bool test_bit(const std::array<std::uint64_t, kBitWords>& bits,
                       std::uint16_t i) {
    return (bits[i >> 6] >> (i & 63)) & 1u;
  }
  static void set_bit(std::array<std::uint64_t, kBitWords>& bits,
                      std::uint16_t i) {
    bits[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  // 16-bit mix of the three 32-bit words of a large community.
  static std::uint16_t large_fingerprint(bgp::LargeCommunity c) {
    std::uint32_t h = c.global_admin() * 0x9E3779B1u;
    h ^= c.local1() * 0x85EBCA77u;
    h ^= c.local2() * 0xC2B2AE3Du;
    return static_cast<std::uint16_t>(h ^ (h >> 16));
  }

  struct LargeEntry {
    std::uint32_t global = 0, l1 = 0, l2 = 0;
    Asn provider = 0;
    friend auto operator<=>(const LargeEntry&, const LargeEntry&) = default;
  };

  std::array<std::uint64_t, kBitWords> classic_bits_{};
  std::array<std::uint64_t, kBitWords> large_bits_{};

  // Sorted raw classic communities; entries_[i] belongs to keys_[i].
  // Keys live in their own array so the binary search walks densely
  // packed 32-bit values.
  std::vector<std::uint32_t> keys_;
  std::vector<EntryView> entries_;

  // Dense pools backing the entry spans.
  std::vector<Asn> provider_pool_;
  std::vector<std::uint32_t> ixp_pool_;

  std::vector<LargeEntry> large_;  // sorted by (global, l1, l2)
};

}  // namespace bgpbh::dictionary
