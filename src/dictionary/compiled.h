// Compiled, immutable fast-path form of the blackhole dictionary.
//
// The engine matches *every* update's communities against the
// dictionary, yet in a realistic feed almost none carry a blackhole
// community — the lookup cost is dominated by misses.  The mutable
// BlackholeDictionary (std::map, one node allocation per entry) is the
// build/update-time representation; CompiledDictionary is the frozen
// read-path form the inference engine actually queries:
//
//   * an 8 KiB presence bitset over the 16-bit *value* half of classic
//     communities (the "666" of "3356:666"), so a non-blackhole update
//     costs one bit-test per community and touches no cold memory —
//     blackhole values cluster (666, 66, 999, ...), so the bitset is
//     extremely sparse and a miss almost never proceeds further;
//   * a flat open-addressing slot table (power-of-two capacity, load
//     factor <= 0.5, linear probing) for confirmed candidates: the
//     common hit is one multiply-shift hash, one 8-byte slot load and
//     one compare — no binary-search dependency chain, no pointer
//     chasing into map nodes.  Provider/IXP lists are packed into
//     dense pools and exposed as std::span views;
//   * the same two-level treatment for RFC 8092 large communities,
//     keyed on a 16-bit fingerprint of the 96-bit value.
//
// The compiled form never produces a false negative: every community
// the source dictionary knows passes the bitset and resolves to an
// identical entry (tests/test_compiled_dictionary.cc fuzzes this
// equivalence).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dictionary/dictionary.h"

namespace bgpbh::dictionary {

// Allocation-free view of one dictionary entry's detection-relevant
// fields.  Both the compiled fast path and the std::map slow path
// produce this shape, so the engine's inference logic is written once
// (and the two paths stay byte-for-byte comparable).
struct EntryView {
  std::span<const Asn> provider_asns;
  std::span<const std::uint32_t> ixp_ids;

  bool ambiguous() const { return provider_asns.size() > 1; }
};

class CompiledDictionary {
 public:
  CompiledDictionary() = default;
  explicit CompiledDictionary(const BlackholeDictionary& source);

  // Copying would duplicate the pools while the EntryView spans kept
  // pointing into the source object's storage. Moves transfer the pool
  // buffers, so the spans stay valid.
  CompiledDictionary(const CompiledDictionary&) = delete;
  CompiledDictionary& operator=(const CompiledDictionary&) = delete;
  CompiledDictionary(CompiledDictionary&&) = default;
  CompiledDictionary& operator=(CompiledDictionary&&) = default;

  // One bit-test: can `c` possibly be a blackhole community?  False
  // positives allowed (same 16-bit value half as a real entry), false
  // negatives never.
  bool maybe_blackhole(bgp::Community c) const {
    return test_bit(classic_bits_, c.value());
  }
  bool maybe_blackhole(bgp::LargeCommunity c) const {
    return test_bit(large_bits_, large_fingerprint(c));
  }

  // True if any community in the set may be a blackhole community.
  // Pure bit-tests over hot cache lines; the engine consults this
  // before doing any per-update path work.
  bool prefilter(const bgp::CommunitySet& comms) const {
    for (auto c : comms.classic()) {
      if (maybe_blackhole(c)) return true;
    }
    for (auto c : comms.large()) {
      if (maybe_blackhole(c)) return true;
    }
    return false;
  }

  // Exact lookup; nullptr when `c` is not a blackhole community.  The
  // returned view stays valid for the lifetime of this object.
  const EntryView* lookup(bgp::Community c) const {
    if (slots_.empty()) return nullptr;
    const std::uint32_t key = c.raw();
    std::size_t i = slot_index(key);
    for (;;) {
      const Slot& s = slots_[i];
      if (s.entry_plus_one == 0) return nullptr;
      if (s.key == key) return &entries_[s.entry_plus_one - 1];
      i = (i + 1) & slot_mask_;
    }
  }
  std::optional<Asn> lookup_large(bgp::LargeCommunity c) const;

  std::size_t num_classic() const { return entries_.size(); }
  std::size_t num_large() const { return large_.size(); }

 private:
  static constexpr std::size_t kBitWords = 65536 / 64;  // 8 KiB per set

  static bool test_bit(const std::array<std::uint64_t, kBitWords>& bits,
                       std::uint16_t i) {
    return (bits[i >> 6] >> (i & 63)) & 1u;
  }
  static void set_bit(std::array<std::uint64_t, kBitWords>& bits,
                      std::uint16_t i) {
    bits[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  // 16-bit mix of the three 32-bit words of a large community.
  static std::uint16_t large_fingerprint(bgp::LargeCommunity c) {
    std::uint32_t h = c.global_admin() * 0x9E3779B1u;
    h ^= c.local1() * 0x85EBCA77u;
    h ^= c.local2() * 0xC2B2AE3Du;
    return static_cast<std::uint16_t>(h ^ (h >> 16));
  }

  struct LargeEntry {
    std::uint32_t global = 0, l1 = 0, l2 = 0;
    Asn provider = 0;
    friend auto operator<=>(const LargeEntry&, const LargeEntry&) = default;
  };

  std::array<std::uint64_t, kBitWords> classic_bits_{};
  std::array<std::uint64_t, kBitWords> large_bits_{};

  // Open-addressing slot table over raw classic communities.  A slot
  // is 8 bytes: the raw key and a 1-based index into entries_ (0 =
  // empty).  Capacity is a power of two at most half full, so linear
  // probe chains stay short and a lookup is branch-predictable.
  struct Slot {
    std::uint32_t key = 0;
    std::uint32_t entry_plus_one = 0;
  };

  std::size_t slot_index(std::uint32_t key) const {
    // Fibonacci multiply-shift: cheap and mixes the ASN half (the
    // varying half of blackhole communities) into the high bits.
    return (key * 0x9E3779B1u) >> slot_shift_;
  }

  std::vector<Slot> slots_;
  std::size_t slot_mask_ = 0;
  unsigned slot_shift_ = 32;
  std::vector<EntryView> entries_;

  // Dense pools backing the entry spans.
  std::vector<Asn> provider_pool_;
  std::vector<std::uint32_t> ixp_pool_;

  std::vector<LargeEntry> large_;  // sorted by (global, l1, l2)
};

}  // namespace bgpbh::dictionary
