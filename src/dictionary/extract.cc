#include "dictionary/extract.h"

#include <cctype>

#include "util/strings.h"

namespace bgpbh::dictionary {

namespace {

// Lemmas matched case-insensitively; hyphen/space variants normalized
// before matching.
const char* kLemmas[] = {
    "blackhole", "blackholing", "black hole", "null route", "null routing",
    "rtbh", "remotely triggered blackhol",
};

// "discard"/"drop" count only together with "traffic" (avoids matching
// e.g. "drop the MED" style phrasings).
bool has_drop_traffic(const std::string& lower) {
  bool verb = lower.find("discard") != std::string::npos ||
              lower.find("drop") != std::string::npos;
  return verb && lower.find("traffic") != std::string::npos;
}

std::string normalize(std::string_view fragment) {
  std::string lower = util::to_lower(fragment);
  // Fold hyphens into spaces so "black-hole" matches "black hole".
  for (char& c : lower) {
    if (c == '-') c = ' ';
  }
  return lower;
}

bool is_community_token(std::string_view token) {
  int colons = 0;
  bool digits = false;
  for (char c : token) {
    if (c == ':') {
      ++colons;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    digits = true;
  }
  return digits && (colons == 1 || colons == 2);
}

std::string_view strip_markup(std::string_view token) {
  while (!token.empty() && !std::isdigit(static_cast<unsigned char>(token.front())))
    token.remove_prefix(1);
  while (!token.empty() && !std::isdigit(static_cast<unsigned char>(token.back())))
    token.remove_suffix(1);
  return token;
}

}  // namespace

bool contains_blackhole_lemma(std::string_view fragment) {
  std::string lower = normalize(fragment);
  for (const char* lemma : kLemmas) {
    if (lower.find(lemma) != std::string::npos) return true;
  }
  return has_drop_traffic(lower);
}

std::string extract_scope(std::string_view fragment) {
  std::string lower = normalize(fragment);
  if (lower.find("europe") != std::string::npos) return "EU";
  if (lower.find("the us") != std::string::npos ||
      lower.find("u.s.") != std::string::npos)
    return "US";
  if (lower.find("asia") != std::string::npos) return "AS";
  return "";
}

std::optional<std::uint8_t> extract_max_prefix_len(std::string_view fragment) {
  std::string lower = normalize(fragment);
  if (lower.find("prefix") == std::string::npos) return std::nullopt;
  std::size_t slash = lower.find('/');
  while (slash != std::string::npos) {
    std::size_t end = slash + 1;
    while (end < lower.size() && std::isdigit(static_cast<unsigned char>(lower[end])))
      ++end;
    if (end > slash + 1) {
      std::uint32_t v = 0;
      if (util::parse_u32(std::string_view(lower).substr(slash + 1, end - slash - 1), v) &&
          v <= 128) {
        return static_cast<std::uint8_t>(v);
      }
    }
    slash = lower.find('/', slash + 1);
  }
  return std::nullopt;
}

std::vector<ExtractedCommunity> extract_from_document(const Document& doc) {
  std::vector<ExtractedCommunity> out;
  std::optional<std::uint8_t> doc_max_len;

  // First pass: meta lines.
  for (auto line : util::split(doc.text, '\n')) {
    if (auto len = extract_max_prefix_len(line)) doc_max_len = len;
  }

  for (auto line : util::split(doc.text, '\n')) {
    bool bh = contains_blackhole_lemma(line);
    std::string scope = extract_scope(line);
    for (auto token : util::split_ws(line)) {
      std::string_view t = strip_markup(token);
      if (!is_community_token(t)) continue;
      ExtractedCommunity e;
      e.subject_asn = doc.subject_asn;
      e.subject_is_ixp = doc.subject_is_ixp;
      e.ixp_id = doc.ixp_id;
      e.is_blackhole = bh;
      e.source = doc.kind;
      e.scope = scope;
      if (doc_max_len) e.max_prefix_len = *doc_max_len;
      auto parts = util::split(t, ':');
      if (parts.size() == 2) {
        e.community = bgp::Community::parse(t);
        if (!e.community) continue;
      } else {
        e.large_community = bgp::LargeCommunity::parse(t);
        if (!e.large_community) continue;
      }
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::vector<ExtractedCommunity> extract_all(const Corpus& corpus) {
  std::vector<ExtractedCommunity> out;
  for (const auto& doc : corpus.documents) {
    auto found = extract_from_document(doc);
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

}  // namespace bgpbh::dictionary
