// The blackhole communities dictionary (§4.1) — the data structure the
// inference engine matches every BGP update against.
//
// Keyed by classic community (plus a small side table for RFC 8092
// large communities).  One community may map to multiple providers:
// shared values such as 0:666 or the RFC 7999 65535:666 used by 47
// IXPs are *ambiguous* and require path/peer evidence at inference
// time (§4.2).
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/community.h"
#include "dictionary/corpus.h"
#include "dictionary/extract.h"
#include "topology/registry.h"

namespace bgpbh::dictionary {

enum class DictSource : std::uint8_t { kIrr, kWebPage, kPrivate };

struct DictEntry {
  bgp::Community community;
  // ISP providers that use this community for blackholing.
  std::vector<Asn> provider_asns;
  // IXPs that use this community (via their route servers).
  std::vector<std::uint32_t> ixp_ids;
  DictSource source = DictSource::kIrr;
  std::string scope;
  std::uint8_t max_prefix_len = 32;

  bool ambiguous() const { return provider_asns.size() + ixp_ids.size() > 1; }
  bool ixp_only() const { return provider_asns.empty() && !ixp_ids.empty(); }
};

class BlackholeDictionary {
 public:
  void add_provider(bgp::Community c, Asn provider, DictSource source,
                    const std::string& scope = "", std::uint8_t max_len = 32);
  void add_ixp(bgp::Community c, std::uint32_t ixp_id, DictSource source);
  void add_large(bgp::LargeCommunity c, Asn provider, DictSource source);

  bool is_blackhole(bgp::Community c) const { return entries_.contains(c); }
  bool is_blackhole(bgp::LargeCommunity c) const { return large_.contains(c); }
  const DictEntry* lookup(bgp::Community c) const;
  std::optional<Asn> lookup_large(bgp::LargeCommunity c) const;

  // Any blackhole community present in the set?
  bool any_blackhole(const bgp::CommunitySet& comms) const;

  std::size_t num_communities() const { return entries_.size() + large_.size(); }
  std::size_t num_providers() const;
  std::size_t num_ixps() const;

  // All provider ASNs (ISPs) with at least one dictionary community.
  std::vector<Asn> all_providers() const;
  std::vector<std::uint32_t> all_ixps() const;

  const std::map<bgp::Community, DictEntry>& entries() const { return entries_; }
  const std::map<bgp::LargeCommunity, Asn>& large_entries() const { return large_; }

  // Table 2: (#networks, #communities) per network type; IXPs counted
  // in their own class.
  struct TypeBreakdown {
    std::size_t networks = 0;
    std::size_t communities = 0;
  };
  std::map<topology::NetworkType, TypeBreakdown> breakdown(
      const topology::Registry& registry) const;

 private:
  std::map<bgp::Community, DictEntry> entries_;
  std::map<bgp::LargeCommunity, Asn> large_;
};

// Build the documented dictionary from a corpus (extraction + the
// paper's validation rule: only documented/privately-confirmed
// communities are included).
BlackholeDictionary build_documented_dictionary(const Corpus& corpus,
                                                const topology::Registry& registry);

// ---- Longitudinal stability (§4.1) -------------------------------------
// The paper compares against the 2008 Donnet-Bonaventure dictionary:
// 72% of its communities are still active, none re-purposed.
struct LegacyDictionary {
  std::vector<std::pair<Asn, bgp::Community>> entries;
};

// Derive a synthetic "2008" dictionary from ground truth: `active_rate`
// of entries match current blackhole communities; the rest belong to
// providers that stopped using them (and are not re-used for anything).
LegacyDictionary make_legacy_dictionary(const topology::AsGraph& graph,
                                        double active_rate, std::uint64_t seed);

struct LegacyComparison {
  std::size_t total = 0;
  std::size_t still_active = 0;
  std::size_t repurposed = 0;  // now used as a *service* community
};
LegacyComparison compare_with_legacy(const BlackholeDictionary& dict,
                                     const LegacyDictionary& legacy,
                                     const topology::AsGraph& graph);

}  // namespace bgpbh::dictionary
