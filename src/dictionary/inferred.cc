#include "dictionary/inferred.h"

#include <algorithm>

namespace bgpbh::dictionary {

void CommunityUsage::observe(const bgp::ObservedUpdate& update,
                             const BlackholeDictionary& documented) {
  if (update.body.announced.empty()) return;
  bool has_documented_bh = documented.any_blackhole(update.body.communities);
  for (auto community : update.body.communities.classic()) {
    Stats& s = stats_[community];
    for (const auto& prefix : update.body.announced) {
      s.prefix_len_counts[prefix.len()] += 1;
      s.total += 1;
    }
    if (has_documented_bh && !documented.is_blackhole(community)) {
      s.cooccur_with_documented += 1;
    }
  }
}

double CommunityUsage::Stats::fraction_more_specific_than(std::uint8_t len) const {
  if (total == 0) return 0.0;
  std::uint64_t n = 0;
  for (const auto& [plen, count] : prefix_len_counts) {
    if (plen > len) n += count;
  }
  return static_cast<double>(n) / static_cast<double>(total);
}

std::vector<std::pair<std::uint8_t, double>> CommunityUsage::Stats::length_profile()
    const {
  std::vector<std::pair<std::uint8_t, double>> out;
  if (total == 0) return out;
  for (const auto& [plen, count] : prefix_len_counts) {
    out.emplace_back(plen,
                     static_cast<double>(count) / static_cast<double>(total));
  }
  return out;
}

std::vector<InferredCommunity> infer_undocumented(
    const CommunityUsage& usage, const BlackholeDictionary& documented,
    const topology::AsGraph& graph, const InferenceParams& params) {
  std::vector<InferredCommunity> out;
  for (const auto& [community, stats] : usage.stats()) {
    if (documented.is_blackhole(community)) continue;
    if (stats.total < params.min_occurrences) continue;
    double frac = stats.fraction_more_specific_than(24);
    if (frac < params.min_more_specific_fraction) continue;
    if (stats.cooccur_with_documented < params.min_cooccurrences) continue;
    // Upper 16 bits must encode a public ASN we can map to a provider.
    Asn candidate = community.asn();
    if (candidate == 0 || graph.find(candidate) == nullptr) continue;
    InferredCommunity ic;
    ic.community = community;
    ic.provider_asn = candidate;
    ic.occurrences = stats.total;
    ic.more_specific_fraction = frac;
    ic.cooccurrences = stats.cooccur_with_documented;
    out.push_back(ic);
  }
  std::sort(out.begin(), out.end(),
            [](const InferredCommunity& a, const InferredCommunity& b) {
              return a.community < b.community;
            });
  return out;
}

}  // namespace bgpbh::dictionary
