#include "fault/file_faults.h"

#include <cerrno>

namespace bgpbh::fault {

std::size_t FaultyFileOps::write(const void* data, std::size_t bytes,
                                 std::FILE* file) {
  const FaultSpec* spec = injector_.on_op(Seam::kFileWrite);
  if (!spec) return base_.write(data, bytes, file);
  if (spec->short_write && bytes > 1) {
    // Land a real prefix so the record is genuinely torn on disk.
    const std::size_t partial = bytes / 2;
    const std::size_t wrote = base_.write(data, partial, file);
    errno = spec->error;
    return wrote < partial ? wrote : partial;
  }
  errno = spec->error;
  return 0;
}

bool FaultyFileOps::flush(std::FILE* file) {
  const FaultSpec* spec = injector_.on_op(Seam::kFileFlush);
  if (!spec) return base_.flush(file);
  // Deliberately skip the real flush: the buffered tail stays in
  // stdio, exactly like a flush that went nowhere.  (SegmentWriter's
  // abandon path truncates to the synced watermark after fclose, so
  // the late fclose-time flush of these bytes cannot resurrect them.)
  errno = spec->error;
  return false;
}

bool FaultyFileOps::sync(int fd) {
  const FaultSpec* spec = injector_.on_op(Seam::kFileSync);
  if (!spec) return base_.sync(fd);
  errno = spec->error;
  return false;
}

}  // namespace bgpbh::fault
