// Deterministic fault injection for the ingest and storage planes.
//
// A FaultPlan is a list of fault windows, each anchored at an explicit
// per-seam operation count — "the 3rd..5th source pull disconnects",
// "the 7th file write returns ENOSPC" — so a schedule replays
// identically every run.  A FaultInjector executes one plan: every
// seam call site asks on_op(seam), which advances that seam's op
// counter and returns the active FaultSpec (or null).  Seeded helpers
// (scattered_outages) expand a single seed into a schedule via the
// repo's deterministic RNG, never wall-clock or global randomness.
//
// The injector itself never touches production code paths: faults
// enter only through the opt-in wrappers — fault::FaultySource around
// an UpdateSource, fault::FaultyFileOps under a SegmentWriter.  With
// no wrapper installed the cost is zero.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bgpbh::fault {

// Where a fault strikes.  Each seam has its own op counter.
enum class Seam : int {
  kSource = 0,     // UpdateSource::next() pulls
  kFileWrite = 1,  // FileOps::write calls
  kFileFlush = 2,  // FileOps::flush calls
  kFileSync = 3,   // FileOps::sync calls
};
inline constexpr std::size_t kNumSeams = 4;

struct FaultSpec {
  Seam seam = Seam::kSource;
  // Fault window in per-seam op counts: ops [at, at + length) fail.
  std::uint64_t at = 0;
  std::uint64_t length = 1;
  // kSource only: inner updates silently consumed when the window
  // opens — the data a real collector lost while disconnected.
  std::uint64_t drop = 0;
  // File seams: errno surfaced to the writer.
  int error = EIO;
  // kFileWrite only: write a prefix of the buffer before failing
  // (torn-record case) instead of failing cleanly at a boundary.
  bool short_write = false;
};

struct FaultPlan {
  std::vector<FaultSpec> faults;

  // Builder helpers; all return *this for chaining.
  FaultPlan& disconnect(std::uint64_t at, std::uint64_t length,
                        std::uint64_t drop = 0);
  FaultPlan& fail_writes(std::uint64_t at, std::uint64_t length,
                         int error = EIO, bool short_write = false);
  FaultPlan& fail_flushes(std::uint64_t at, std::uint64_t length,
                          int error = EIO);
  FaultPlan& fail_syncs(std::uint64_t at, std::uint64_t length,
                        int error = EIO);

  // Seeded schedule: `n_outages` disjoint collector outages scattered
  // over a stream of `stream_length` pulls, each 1..max_outage ops
  // long and dropping `drop_each` inner updates.  Deterministic in the
  // seed.
  static FaultPlan scattered_outages(std::uint64_t seed,
                                     std::uint64_t stream_length,
                                     std::size_t n_outages,
                                     std::uint64_t max_outage,
                                     std::uint64_t drop_each = 0);
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Advance `seam`'s op counter by one and return the spec covering
  // that op, or nullptr when it should proceed normally.  Each seam is
  // called from one thread at a time in practice (the source loop, the
  // spill writer thread), but counters are atomic so mixed-thread use
  // stays defined.
  const FaultSpec* on_op(Seam seam);

  // Ops seen / faults injected per seam so far.
  std::uint64_t ops(Seam seam) const {
    return ops_[static_cast<std::size_t>(seam)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t injected(Seam seam) const {
    return injected_[static_cast<std::size_t>(seam)].load(
        std::memory_order_relaxed);
  }

 private:
  std::vector<FaultSpec> faults_;
  std::atomic<std::uint64_t> ops_[kNumSeams] = {};
  std::atomic<std::uint64_t> injected_[kNumSeams] = {};
};

}  // namespace bgpbh::fault
