// FaultyFileOps: the disk half of fault injection — a storage::FileOps
// that consults a FaultInjector before every write/flush/sync and
// fails on schedule with the spec's errno (EIO, ENOSPC, ...).  Plug it
// into SegmentConfig::file_ops to exercise SegmentWriter's
// abandon/reseal path and SpillWriter's retry → degrade → re-arm
// machinery without a real failing disk.
//
// A short_write spec writes a prefix of the buffer for real before
// failing, producing a genuinely torn record on disk — the case
// recovery must truncate.
#pragma once

#include "fault/fault.h"
#include "storage/file_ops.h"

namespace bgpbh::fault {

class FaultyFileOps : public storage::FileOps {
 public:
  // Both must outlive this object.
  explicit FaultyFileOps(FaultInjector& injector,
                         storage::FileOps& base = storage::real_file_ops())
      : injector_(injector), base_(base) {}

  std::size_t write(const void* data, std::size_t bytes,
                    std::FILE* file) override;
  bool flush(std::FILE* file) override;
  bool sync(int fd) override;

 private:
  FaultInjector& injector_;
  storage::FileOps& base_;
};

}  // namespace bgpbh::fault
