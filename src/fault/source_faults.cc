#include "fault/source_faults.h"

#include <thread>

namespace bgpbh::fault {

const routing::FeedUpdate* FaultySource::next() {
  const FaultSpec* spec = injector_.on_op(Seam::kSource);
  if (spec) {
    if (spec != window_) {
      // Window opens: the collector goes dark, and the updates it
      // would have produced meanwhile are gone.
      window_ = spec;
      outages_.fetch_add(1, std::memory_order_relaxed);
      for (std::uint64_t i = 0; i < spec->drop; ++i) {
        if (!inner_.next()) break;
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    status_.store(stream::SourceStatus::kDisconnected,
                  std::memory_order_relaxed);
    return nullptr;
  }
  window_ = nullptr;
  const routing::FeedUpdate* update = inner_.next();
  if (update) {
    delivered_.fetch_add(1, std::memory_order_relaxed);
    status_.store(stream::SourceStatus::kActive, std::memory_order_relaxed);
  } else {
    status_.store(inner_.status(), std::memory_order_relaxed);
  }
  return update;
}

ReconnectingSource::ReconnectingSource(stream::UpdateSource& inner,
                                       util::RetryPolicy policy,
                                       std::string collector, SleepFn sleep)
    : inner_(inner),
      policy_(policy),
      collector_(std::move(collector)),
      sleep_(std::move(sleep)) {
  if (!sleep_) {
    sleep_ = [](std::chrono::nanoseconds delay) {
      std::this_thread::sleep_for(delay);
    };
  }
}

const routing::FeedUpdate* ReconnectingSource::next() {
  const routing::FeedUpdate* update = inner_.next();
  if (update) {
    last_time_.store(update->update.time, std::memory_order_relaxed);
    seen_update_.store(true, std::memory_order_relaxed);
    status_.store(stream::SourceStatus::kActive, std::memory_order_relaxed);
    return update;
  }
  if (inner_.status() != stream::SourceStatus::kDisconnected) {
    // Normal end (or an inner permanent failure): pass it through.
    status_.store(inner_.status(), std::memory_order_relaxed);
    return nullptr;
  }
  // Collector outage: ride it out with backoff.
  outages_.fetch_add(1, std::memory_order_relaxed);
  in_outage_.store(true, std::memory_order_relaxed);
  status_.store(stream::SourceStatus::kDisconnected,
                std::memory_order_relaxed);
  for (std::size_t attempt = 1; attempt <= policy_.attempts(); ++attempt) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (retry_log_limit_.allow()) {
      util::Log(util::LogLevel::kWarn, "source")
          .msg("collector disconnected; retrying")
          .kv("collector", collector_)
          .kv("attempt", attempt)
          .kv("suppressed", retry_log_limit_.last_suppressed());
    }
    sleep_(policy_.delay(attempt));
    update = inner_.next();
    if (update) {
      // Rejoined: account the observation-time gap the outage left.
      util::SimTime gap = 0;
      if (seen_update_.load(std::memory_order_relaxed)) {
        gap = update->update.time - last_time_.load(std::memory_order_relaxed);
        if (gap < 0) gap = 0;
      }
      gap_total_.fetch_add(gap, std::memory_order_relaxed);
      rejoins_.fetch_add(1, std::memory_order_relaxed);
      in_outage_.store(false, std::memory_order_relaxed);
      last_time_.store(update->update.time, std::memory_order_relaxed);
      seen_update_.store(true, std::memory_order_relaxed);
      status_.store(stream::SourceStatus::kActive, std::memory_order_relaxed);
      util::Log(util::LogLevel::kInfo, "source")
          .msg("collector rejoined")
          .kv("collector", collector_)
          .kv("attempts", attempt)
          .kv("gap_seconds", gap);
      return update;
    }
    if (inner_.status() != stream::SourceStatus::kDisconnected) {
      // The stream ended (or failed) while we were reconnecting.
      in_outage_.store(false, std::memory_order_relaxed);
      status_.store(inner_.status(), std::memory_order_relaxed);
      return nullptr;
    }
  }
  in_outage_.store(false, std::memory_order_relaxed);
  gave_up_.store(true, std::memory_order_relaxed);
  status_.store(stream::SourceStatus::kFailed, std::memory_order_relaxed);
  util::Log(util::LogLevel::kError, "source")
      .msg("reconnect attempts exhausted; giving up")
      .kv("collector", collector_)
      .kv("attempts", policy_.attempts())
      .kv("outages", outages_.load(std::memory_order_relaxed));
  return nullptr;
}

api::ComponentHealth ReconnectingSource::component_health() const {
  api::ComponentHealth health;
  health.component = "source:" + collector_;
  if (gave_up_.load(std::memory_order_relaxed)) {
    health.state = api::HealthState::kHalted;
    health.reason = "reconnect attempts exhausted after " +
                    std::to_string(outages()) + " outage(s); observation gap " +
                    std::to_string(static_cast<long long>(total_gap())) + "s";
  } else if (in_outage_.load(std::memory_order_relaxed)) {
    health.state = api::HealthState::kDegraded;
    health.reason = "collector disconnected; reconnecting (outage " +
                    std::to_string(outages()) + ")";
  }
  return health;
}

}  // namespace bgpbh::fault
