// The ingest half of fault injection, plus the recovery adapter it
// exercises.
//
//   FaultySource        — wraps any UpdateSource; on the injector's
//                         schedule, next() returns nullptr with status
//                         kDisconnected (a collector outage) and
//                         silently consumes `drop` inner updates when
//                         the window opens (the data a real collector
//                         lost while dark).  After the window, the
//                         stream resumes.
//   ReconnectingSource  — production-side adapter: rides through
//                         kDisconnected outages with RetryPolicy
//                         backoff, counts outages / rejoins / retries,
//                         accounts the observation-time gap each
//                         outage left, and reports itself into the
//                         session health plane (api::HealthReporter).
//                         When attempts are exhausted it gives up with
//                         status kFailed — the stream then ends and
//                         the gap accounting says exactly what was
//                         missed, never silently.
//
// Pipeline wiring: StreamPipeline::run()/AnalysisSession::feed() stop
// at the first nullptr, so a FaultySource must sit behind a
// ReconnectingSource (or an equivalent retry loop) for the stream to
// survive an outage.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "api/health.h"
#include "fault/fault.h"
#include "stream/source.h"
#include "util/log.h"
#include "util/retry.h"

namespace bgpbh::fault {

class FaultySource : public stream::UpdateSource {
 public:
  // Both must outlive this object.
  FaultySource(stream::UpdateSource& inner, FaultInjector& injector)
      : inner_(inner), injector_(injector) {}

  const routing::FeedUpdate* next() override;
  stream::SourceStatus status() const override {
    return status_.load(std::memory_order_relaxed);
  }

  std::uint64_t updates_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  // Inner updates consumed at outage starts — the exact data lost.
  std::uint64_t updates_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t outages() const {
    return outages_.load(std::memory_order_relaxed);
  }

 private:
  stream::UpdateSource& inner_;
  FaultInjector& injector_;
  const FaultSpec* window_ = nullptr;  // outage window currently open
  std::atomic<stream::SourceStatus> status_{stream::SourceStatus::kActive};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> outages_{0};
};

class ReconnectingSource : public stream::UpdateSource,
                           public api::HealthReporter {
 public:
  // `sleep` exists for tests (deterministic, no real waiting); the
  // default sleeps the calling thread.  `collector` labels health and
  // log lines.  `inner` must outlive this object.
  using SleepFn = std::function<void(std::chrono::nanoseconds)>;
  ReconnectingSource(stream::UpdateSource& inner, util::RetryPolicy policy,
                     std::string collector = "collector", SleepFn sleep = {});

  const routing::FeedUpdate* next() override;
  stream::SourceStatus status() const override {
    return status_.load(std::memory_order_relaxed);
  }

  // Health: kDegraded while riding out an outage, kHalted after
  // giving up, kHealthy otherwise.  Callable from any thread.
  api::ComponentHealth component_health() const override;

  // ---- outage/rejoin accounting (all thread-safe reads) -----------------
  std::uint64_t outages() const {
    return outages_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejoins() const {
    return rejoins_.load(std::memory_order_relaxed);
  }
  std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  bool gave_up() const { return gave_up_.load(std::memory_order_relaxed); }
  // Sum over rejoins of (first observation time after - last before):
  // the observation-time window the outages blinded us to.
  util::SimTime total_gap() const {
    return gap_total_.load(std::memory_order_relaxed);
  }

 private:
  stream::UpdateSource& inner_;
  util::RetryPolicy policy_;
  std::string collector_;
  SleepFn sleep_;
  util::LogRateLimiter retry_log_limit_{/*per_second=*/1.0, /*burst=*/5.0};

  std::atomic<stream::SourceStatus> status_{stream::SourceStatus::kActive};
  std::atomic<bool> in_outage_{false};
  std::atomic<bool> gave_up_{false};
  std::atomic<std::uint64_t> outages_{0};
  std::atomic<std::uint64_t> rejoins_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<util::SimTime> gap_total_{0};
  std::atomic<util::SimTime> last_time_{0};
  std::atomic<bool> seen_update_{false};
};

}  // namespace bgpbh::fault
