#include "fault/fault.h"

#include <algorithm>

#include "util/rng.h"

namespace bgpbh::fault {

FaultPlan& FaultPlan::disconnect(std::uint64_t at, std::uint64_t length,
                                 std::uint64_t drop) {
  FaultSpec spec;
  spec.seam = Seam::kSource;
  spec.at = at;
  spec.length = length;
  spec.drop = drop;
  faults.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::fail_writes(std::uint64_t at, std::uint64_t length,
                                  int error, bool short_write) {
  FaultSpec spec;
  spec.seam = Seam::kFileWrite;
  spec.at = at;
  spec.length = length;
  spec.error = error;
  spec.short_write = short_write;
  faults.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::fail_flushes(std::uint64_t at, std::uint64_t length,
                                   int error) {
  FaultSpec spec;
  spec.seam = Seam::kFileFlush;
  spec.at = at;
  spec.length = length;
  spec.error = error;
  faults.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::fail_syncs(std::uint64_t at, std::uint64_t length,
                                 int error) {
  FaultSpec spec;
  spec.seam = Seam::kFileSync;
  spec.at = at;
  spec.length = length;
  spec.error = error;
  faults.push_back(spec);
  return *this;
}

FaultPlan FaultPlan::scattered_outages(std::uint64_t seed,
                                       std::uint64_t stream_length,
                                       std::size_t n_outages,
                                       std::uint64_t max_outage,
                                       std::uint64_t drop_each) {
  FaultPlan plan;
  if (stream_length == 0 || n_outages == 0) return plan;
  if (max_outage == 0) max_outage = 1;
  util::Rng rng(seed);
  // Scatter outage start points, then sort and de-overlap so every
  // window is disjoint (overlapping windows would double-count drops).
  std::vector<std::uint64_t> starts;
  starts.reserve(n_outages);
  for (std::size_t i = 0; i < n_outages; ++i) {
    starts.push_back(rng.uniform(stream_length));
  }
  std::sort(starts.begin(), starts.end());
  std::uint64_t next_free = 0;
  for (std::uint64_t start : starts) {
    start = std::max(start, next_free);
    const std::uint64_t length = 1 + rng.uniform(max_outage);
    plan.disconnect(start, length, drop_each);
    next_free = start + length + 1;
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : faults_(std::move(plan.faults)) {}

const FaultSpec* FaultInjector::on_op(Seam seam) {
  const std::size_t s = static_cast<std::size_t>(seam);
  const std::uint64_t op = ops_[s].fetch_add(1, std::memory_order_relaxed);
  for (const FaultSpec& spec : faults_) {
    if (spec.seam != seam) continue;
    if (op >= spec.at && op - spec.at < spec.length) {
      injected_[s].fetch_add(1, std::memory_order_relaxed);
      return &spec;
    }
  }
  return nullptr;
}

}  // namespace bgpbh::fault
