// IXP switching-fabric traffic analysis (§10 passive measurements,
// Fig 9c).
//
// Simulates one week of member-to-member traffic at a blackholing IXP:
// baseline flows plus attack traffic toward blackholed prefixes.  A
// member that honours the route-server blackhole route drops matching
// traffic at its egress toward the victim ("blackholed" volume, below
// the zero line in Fig 9c); members that rejected the /32 or do not
// peer with the route server keep forwarding it ("non-blackholed"
// volume above the line).  Misconfigured announcements (invalid next
// hop / missing IRR entry) show control-plane blackholing with no
// data-plane reduction — the paper's red region.
#pragma once

#include <map>
#include <vector>

#include "flows/ipfix.h"
#include "routing/propagation.h"
#include "stats/series.h"
#include "workload/scenario.h"

namespace bgpbh::flows {

using bgp::Asn;

struct TrafficSplit {
  stats::DailySeries blackholed;      // dropped at the IXP
  stats::DailySeries forwarded;       // still traversing toward the victim
};

struct IxpWeekReport {
  // Per tracked prefix: daily blackholed vs forwarded volume (Fig 9c).
  std::map<net::Prefix, TrafficSplit> per_prefix;
  // Residual-source concentration: share of forwarded volume caused by
  // the top `k` non-honouring members (paper: 80% from < 10 members).
  double residual_share_of_top(std::size_t k) const;
  std::size_t residual_member_count() const;

  std::uint64_t total_blackholed_bytes = 0;
  std::uint64_t total_forwarded_bytes = 0;
  std::map<Asn, std::uint64_t> residual_by_member;

  double drop_fraction() const;
};

struct IxpTrafficConfig {
  std::uint64_t seed = 4242;
  std::uint64_t sampling_rate = 10000;  // 1:10K, as in the paper
  double attack_gbps = 18.0;            // attack volume toward each victim
  double baseline_gbps = 1.2;           // legitimate volume per victim
};

class IxpTrafficSim {
 public:
  IxpTrafficSim(const topology::AsGraph& graph,
                routing::PropagationEngine& engine, IxpTrafficConfig config);

  // Simulate `days` days of traffic toward the victims of the given
  // episodes at IXP `ixp_id` (episodes must target that IXP).
  IxpWeekReport simulate(std::uint32_t ixp_id,
                         const std::vector<workload::Episode>& episodes,
                         util::SimTime from, int days);

  // One-day analysis across all blackholed /32s of an IXP: how many of
  // the ASes sending traffic to blackholed IPs drop for at least one of
  // them (paper: about one third).
  struct OneDayAnalysis {
    std::size_t senders = 0;
    std::size_t senders_dropping = 0;
    double fraction_dropping() const {
      return senders == 0 ? 0.0
                          : static_cast<double>(senders_dropping) /
                                static_cast<double>(senders);
    }
  };
  OneDayAnalysis analyze_one_day(std::uint32_t ixp_id,
                                 const std::vector<workload::Episode>& episodes);

  // Raw sampled flow records of the last simulate() call (IPFIX-ready).
  const std::vector<FlowRecord>& sampled_flows() const { return sampled_; }

 private:
  const topology::AsGraph& graph_;
  routing::PropagationEngine& engine_;
  IxpTrafficConfig config_;
  std::vector<FlowRecord> sampled_;
};

}  // namespace bgpbh::flows
