#include "flows/ixp_traffic.h"

#include <algorithm>
#include <cmath>

namespace bgpbh::flows {

double IxpWeekReport::drop_fraction() const {
  std::uint64_t total = total_blackholed_bytes + total_forwarded_bytes;
  return total == 0 ? 0.0
                    : static_cast<double>(total_blackholed_bytes) /
                          static_cast<double>(total);
}

double IxpWeekReport::residual_share_of_top(std::size_t k) const {
  std::vector<std::uint64_t> volumes;
  volumes.reserve(residual_by_member.size());
  std::uint64_t total = 0;
  for (const auto& [asn, v] : residual_by_member) {
    volumes.push_back(v);
    total += v;
  }
  if (total == 0) return 0.0;
  std::sort(volumes.rbegin(), volumes.rend());
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < std::min(k, volumes.size()); ++i) top += volumes[i];
  return static_cast<double>(top) / static_cast<double>(total);
}

std::size_t IxpWeekReport::residual_member_count() const {
  return residual_by_member.size();
}

IxpTrafficSim::IxpTrafficSim(const topology::AsGraph& graph,
                             routing::PropagationEngine& engine,
                             IxpTrafficConfig config)
    : graph_(graph), engine_(engine), config_(config) {}

IxpWeekReport IxpTrafficSim::simulate(
    std::uint32_t ixp_id, const std::vector<workload::Episode>& episodes,
    util::SimTime from, int days) {
  IxpWeekReport report;
  sampled_.clear();
  const topology::Ixp* ixp = graph_.find_ixp(ixp_id);
  if (!ixp) return report;
  util::Rng rng(config_.seed ^ (0x1CCULL << 8) ^ ixp_id);
  Sampler sampler(config_.sampling_rate);

  for (const auto& episode : episodes) {
    if (std::find(episode.ixps.begin(), episode.ixps.end(), ixp_id) ==
        episode.ixps.end())
      continue;
    // Has the route server accepted & redistributed, and is the
    // announcement data-plane effective?
    auto prop = engine_.propagate_blackhole(episode.announcement(episode.start));
    bool rs_active =
        std::find(prop.activated_ixps.begin(), prop.activated_ixps.end(),
                  ixp_id) != prop.activated_ixps.end();
    bool dataplane_effective = rs_active && !prop.control_plane_only;

    TrafficSplit& split = report.per_prefix[episode.prefix];
    if (!episode.prefix.is_v4()) continue;
    std::uint32_t victim_ip = episode.prefix.addr().v4().value();

    // Attack sources: a heavy-hitter subset of members (booter traffic
    // enters via a few transit members), plus diffuse baseline.
    for (int day = 0; day < days; ++day) {
      util::SimTime t0 = from + day * util::kDay;
      for (std::size_t mi = 0; mi < ixp->members.size(); ++mi) {
        Asn member = ixp->members[mi];
        if (member == episode.user) continue;
        // Member traffic shares are zipf-distributed: a handful of large
        // transit members hand in most of the (attack) volume — which is
        // why the §10 residual concentrates in < 10 members.
        double share = 1.0 / std::pow(static_cast<double>(mi + 1), 1.6);
        share *= 0.75 + 0.5 * rng.uniform01();  // daily jitter
        double gbytes_day =
            (config_.attack_gbps * 0.35 + config_.baseline_gbps * 0.12) * share;
        std::uint64_t bytes =
            static_cast<std::uint64_t>(gbytes_day * 1e9 / 8.0 * 3600.0 * 0.4);
        if (bytes == 0) continue;
        std::uint64_t packets = bytes / 700;

        bool drops = dataplane_effective &&
                     engine_.honours_rs_blackhole(ixp_id, member);
        std::int64_t day_idx = util::day_index(t0);
        if (drops) {
          split.blackholed.accumulate(day_idx, static_cast<double>(bytes));
          report.total_blackholed_bytes += bytes;
        } else {
          split.forwarded.accumulate(day_idx, static_cast<double>(bytes));
          report.total_forwarded_bytes += bytes;
          report.residual_by_member[member] += bytes;
        }
        // Sampled IPFIX export (1:10K) of the observable (forwarded +
        // dropped-at-egress both traverse the fabric and are sampled).
        std::uint64_t samples = sampler.sample(packets);
        for (std::uint64_t s = 0; s < samples && sampled_.size() < 20000; ++s) {
          FlowRecord rec;
          rec.start = t0 + static_cast<util::SimTime>(rng.uniform(util::kDay));
          rec.src_ip = net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
          rec.dst_ip = net::Ipv4Addr(victim_ip);
          rec.src_port = static_cast<std::uint16_t>(rng.uniform(65536));
          rec.dst_port = 80;
          rec.protocol = rng.bernoulli(0.7) ? 17 : 6;  // amplification = UDP
          rec.bytes = bytes / std::max<std::uint64_t>(1, packets) *
                      config_.sampling_rate;
          rec.packets = config_.sampling_rate;
          rec.in_member = member;
          rec.out_member = episode.user;
          sampled_.push_back(rec);
        }
      }
    }
  }
  return report;
}

IxpTrafficSim::OneDayAnalysis IxpTrafficSim::analyze_one_day(
    std::uint32_t ixp_id, const std::vector<workload::Episode>& episodes) {
  OneDayAnalysis analysis;
  const topology::Ixp* ixp = graph_.find_ixp(ixp_id);
  if (!ixp) return analysis;

  // Which /32 blackholings are active on the control plane at this IXP?
  std::vector<const workload::Episode*> active;
  for (const auto& episode : episodes) {
    if (!episode.prefix.is_host_route() || !episode.prefix.is_v4()) continue;
    if (std::find(episode.ixps.begin(), episode.ixps.end(), ixp_id) !=
        episode.ixps.end()) {
      active.push_back(&episode);
    }
  }
  if (active.empty()) return analysis;

  for (Asn member : ixp->members) {
    bool sends = false, drops_any = false;
    for (const workload::Episode* episode : active) {
      if (member == episode->user) continue;
      sends = true;  // every member originates some traffic to victims
      auto prop = engine_.propagate_blackhole(
          episode->announcement(episode->start));
      bool rs_active =
          std::find(prop.activated_ixps.begin(), prop.activated_ixps.end(),
                    ixp_id) != prop.activated_ixps.end();
      if (rs_active && !prop.control_plane_only &&
          engine_.honours_rs_blackhole(ixp_id, member)) {
        drops_any = true;
        break;
      }
    }
    if (sends) {
      ++analysis.senders;
      if (drops_any) ++analysis.senders_dropping;
    }
  }
  return analysis;
}

}  // namespace bgpbh::flows
