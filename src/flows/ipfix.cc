#include "flows/ipfix.h"

#include <algorithm>

namespace bgpbh::flows {

namespace {

// Information elements we export (id, length).
struct Field {
  std::uint16_t id;
  std::uint16_t len;
};
// flowStartSeconds, sourceIPv4Address, destinationIPv4Address,
// sourceTransportPort, destinationTransportPort, protocolIdentifier,
// octetDeltaCount, packetDeltaCount, bgpSourceAsNumber, bgpDestinationAsNumber
constexpr Field kFields[] = {
    {150, 4}, {8, 4},  {12, 4}, {7, 2},  {11, 2},
    {4, 1},   {1, 8},  {2, 8},  {16, 4}, {17, 4},
};
constexpr std::uint16_t kTemplateId = 256;

constexpr std::size_t record_length() {
  std::size_t n = 0;
  for (const auto& f : kFields) n += f.len;
  return n;
}

}  // namespace

std::vector<std::vector<std::uint8_t>> IpfixExporter::export_batches(
    std::span<const FlowRecord> records, util::SimTime export_time) {
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t offset = 0; offset < records.size();
       offset += kMaxRecordsPerMessage) {
    std::size_t n = std::min(kMaxRecordsPerMessage, records.size() - offset);
    out.push_back(export_message(records.subspan(offset, n), export_time));
  }
  if (records.empty()) out.push_back(export_message(records, export_time));
  return out;
}

std::vector<std::uint8_t> IpfixExporter::export_message(
    std::span<const FlowRecord> records, util::SimTime export_time) {
  net::BufWriter w;
  // Message header.
  w.u16(10);             // version
  std::size_t len_pos = w.size();
  w.u16(0);              // length (patched)
  w.u32(static_cast<std::uint32_t>(export_time));
  w.u32(sequence_);
  w.u32(domain_);
  sequence_ += static_cast<std::uint32_t>(records.size());

  // Template set.
  w.u16(2);  // set id 2 = template
  w.u16(static_cast<std::uint16_t>(4 + 4 + sizeof(kFields) / sizeof(kFields[0]) * 4));
  w.u16(kTemplateId);
  w.u16(static_cast<std::uint16_t>(sizeof(kFields) / sizeof(kFields[0])));
  for (const auto& f : kFields) {
    w.u16(f.id);
    w.u16(f.len);
  }

  // Data set.
  w.u16(kTemplateId);
  w.u16(static_cast<std::uint16_t>(4 + records.size() * record_length()));
  for (const auto& r : records) {
    w.u32(static_cast<std::uint32_t>(r.start));
    w.u32(r.src_ip.value());
    w.u32(r.dst_ip.value());
    w.u16(r.src_port);
    w.u16(r.dst_port);
    w.u8(r.protocol);
    w.u64(r.bytes);
    w.u64(r.packets);
    w.u32(r.in_member);
    w.u32(r.out_member);
  }
  auto out = w.take();
  // Patch total length.
  out[len_pos] = static_cast<std::uint8_t>(out.size() >> 8);
  out[len_pos + 1] = static_cast<std::uint8_t>(out.size());
  return out;
}

std::optional<std::vector<FlowRecord>> decode_message(
    std::span<const std::uint8_t> data) {
  net::BufReader r(data);
  std::uint16_t version = r.u16();
  std::uint16_t total_len = r.u16();
  r.u32();  // export time
  r.u32();  // sequence
  r.u32();  // domain
  if (!r.ok() || version != 10 || total_len != data.size()) return std::nullopt;

  std::vector<FlowRecord> out;
  bool have_template = false;
  while (r.ok() && r.remaining() >= 4) {
    std::uint16_t set_id = r.u16();
    std::uint16_t set_len = r.u16();
    if (set_len < 4) return std::nullopt;
    net::BufReader set = r.sub(set_len - 4);
    if (!r.ok()) return std::nullopt;
    if (set_id == 2) {
      // Template set: verify it matches our fixed template.
      std::uint16_t tid = set.u16();
      std::uint16_t count = set.u16();
      if (tid != kTemplateId ||
          count != sizeof(kFields) / sizeof(kFields[0]))
        return std::nullopt;
      for (const auto& f : kFields) {
        if (set.u16() != f.id || set.u16() != f.len) return std::nullopt;
      }
      have_template = true;
    } else if (set_id == kTemplateId) {
      if (!have_template) return std::nullopt;
      while (set.ok() && set.remaining() >= record_length()) {
        FlowRecord rec;
        rec.start = static_cast<util::SimTime>(set.u32());
        rec.src_ip = net::Ipv4Addr(set.u32());
        rec.dst_ip = net::Ipv4Addr(set.u32());
        rec.src_port = set.u16();
        rec.dst_port = set.u16();
        rec.protocol = set.u8();
        rec.bytes = set.u64();
        rec.packets = set.u64();
        rec.in_member = set.u32();
        rec.out_member = set.u32();
        out.push_back(rec);
      }
    }
  }
  if (!r.ok()) return std::nullopt;
  return out;
}

std::uint64_t Sampler::sample(std::uint64_t packets) {
  std::uint64_t total = phase_ + packets;
  std::uint64_t samples = total / rate_;
  phase_ = total % rate_;
  return samples;
}

}  // namespace bgpbh::flows
