// IPFIX (RFC 7011) subset: template + data sets for the 5-tuple/volume
// flow records an IXP's switching fabric exports, and the 1-out-of-N
// packet sampler the paper's traces use (1:10K).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/aspath.h"
#include "net/bytes.h"
#include "net/ip.h"
#include "util/time.h"

namespace bgpbh::flows {

struct FlowRecord {
  util::SimTime start = 0;
  net::Ipv4Addr src_ip;
  net::Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;  // TCP
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  bgp::Asn in_member = 0;   // IXP member that handed the traffic in
  bgp::Asn out_member = 0;  // member the traffic is destined to

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

// ---- IPFIX codec -------------------------------------------------------
// Message layout: header (version 10, length, export time, seq, domain),
// one template set (id 256) on first export, then data sets.

class IpfixExporter {
 public:
  explicit IpfixExporter(std::uint32_t observation_domain)
      : domain_(observation_domain) {}

  // Encode a batch of records into one IPFIX message (with template).
  // IPFIX messages carry a 16-bit length: at most kMaxRecordsPerMessage
  // records fit; larger batches must go through export_batches().
  static constexpr std::size_t kMaxRecordsPerMessage = 1400;
  std::vector<std::uint8_t> export_message(std::span<const FlowRecord> records,
                                           util::SimTime export_time);

  // Splits an arbitrarily large batch into valid messages.
  std::vector<std::vector<std::uint8_t>> export_batches(
      std::span<const FlowRecord> records, util::SimTime export_time);

 private:
  std::uint32_t domain_;
  std::uint32_t sequence_ = 0;
};

// Decodes messages produced by IpfixExporter (template id 256).
std::optional<std::vector<FlowRecord>> decode_message(
    std::span<const std::uint8_t> data);

// ---- packet sampling -----------------------------------------------------

// Deterministic 1:N sampler (systematic count-based, as used on IXP
// fabrics).  Feed packets; every Nth is sampled.
class Sampler {
 public:
  explicit Sampler(std::uint64_t rate) : rate_(rate ? rate : 1) {}

  // Returns how many samples a flow of `packets` packets contributes,
  // advancing the phase deterministically.
  std::uint64_t sample(std::uint64_t packets);

  std::uint64_t rate() const { return rate_; }

 private:
  std::uint64_t rate_;
  std::uint64_t phase_ = 0;
};

}  // namespace bgpbh::flows
