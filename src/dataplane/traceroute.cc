#include "dataplane/traceroute.h"

namespace bgpbh::dataplane {

std::size_t TracerouteResult::ip_path_length() const {
  std::size_t last = 0;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (hops[i].responds) last = i + 1;
  }
  return last;
}

std::size_t TracerouteResult::as_path_length() const {
  std::size_t last = 0;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (hops[i].responds) last = i + 1;
  }
  // Count distinct consecutive ASNs among the first `last` hops.
  std::size_t ases = 0;
  Asn prev = 0;
  for (std::size_t i = 0; i < last; ++i) {
    if (hops[i].asn != prev) {
      ++ases;
      prev = hops[i].asn;
    }
  }
  return ases;
}

TracerouteResult TracerouteEngine::trace(Asn src_asn, const net::IpAddr& dst,
                                         const ActiveBlackholes& blackholes) {
  TracerouteResult result;
  auto path = forwarding_.as_path_to(src_asn, dst);
  if (!path) return result;

  for (Asn asn : path->hops()) {
    bool drops_here = asn != src_asn && blackholes.drops(asn, dst);
    auto routers = forwarding_.expand_as(asn, dst);
    if (drops_here) {
      // Traffic dies at the ingress router (null interface): the trace
      // shows the ingress and nothing further.
      if (!routers.empty()) result.hops.push_back(routers.front());
      result.dropped_at = asn;
      return result;
    }
    for (const auto& hop : routers) result.hops.push_back(hop);
  }
  // Destination host: responds unless its covering AS was unreachable.
  RouterHop dst_hop;
  dst_hop.ip = dst;
  dst_hop.asn = path->hops().back();
  dst_hop.responds = true;
  result.hops.push_back(dst_hop);
  result.reached_destination = true;
  return result;
}

}  // namespace bgpbh::dataplane
