#include "dataplane/efficacy.h"

#include <algorithm>

namespace bgpbh::dataplane {

stats::Cdf EfficacyCampaign::ip_delta_after_vs_during() const {
  stats::Cdf cdf;
  for (const auto& m : measurements) {
    if (!m.destination_reachable_after) continue;
    cdf.add(static_cast<double>(m.after_ip) - static_cast<double>(m.during_ip));
  }
  return cdf;
}

stats::Cdf EfficacyCampaign::ip_delta_neighbor_vs_blackholed() const {
  stats::Cdf cdf;
  for (const auto& m : measurements) {
    if (!m.destination_reachable_after) continue;
    cdf.add(static_cast<double>(m.neighbor_ip) - static_cast<double>(m.during_ip));
  }
  return cdf;
}

stats::Cdf EfficacyCampaign::as_delta_after_vs_during() const {
  stats::Cdf cdf;
  for (const auto& m : measurements) {
    if (!m.destination_reachable_after) continue;
    cdf.add(static_cast<double>(m.after_as) - static_cast<double>(m.during_as));
  }
  return cdf;
}

stats::Cdf EfficacyCampaign::as_delta_neighbor_vs_blackholed() const {
  stats::Cdf cdf;
  for (const auto& m : measurements) {
    if (!m.destination_reachable_after) continue;
    cdf.add(static_cast<double>(m.neighbor_as) - static_cast<double>(m.during_as));
  }
  return cdf;
}

double EfficacyCampaign::mean_ip_hop_reduction() const {
  return ip_delta_after_vs_during().mean();
}

double EfficacyCampaign::mean_as_hop_reduction() const {
  return as_delta_after_vs_during().mean();
}

double EfficacyCampaign::fraction_paths_shorter_during() const {
  auto cdf = ip_delta_after_vs_during();
  if (cdf.empty()) return 0.0;
  // after - during > 0 means the trace terminated earlier during.
  return 1.0 - cdf.at(0.0);
}

double EfficacyCampaign::fraction_dropped_at_destination_or_upstream() const {
  std::size_t n = 0, total = 0;
  for (const auto& m : measurements) {
    if (!m.destination_reachable_after) continue;
    ++total;
    if (m.dropped_at_destination_or_upstream) ++n;
  }
  return total == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(total);
}

EfficacyMeasurer::EfficacyMeasurer(const topology::AsGraph& graph,
                                   const topology::CustomerCones& cones,
                                   routing::PropagationEngine& engine,
                                   std::uint64_t seed)
    : graph_(graph),
      engine_(engine),
      forwarding_(graph, engine, seed),
      traceroute_(forwarding_),
      probes_(graph, cones),
      rng_(seed ^ 0xEF1CACULL) {}

net::IpAddr EfficacyMeasurer::neighbor_target(const net::Prefix& blackholed) const {
  if (!blackholed.is_v4()) return blackholed.addr();
  std::uint32_t v = blackholed.addr().v4().value();
  if (blackholed.len() == 32) {
    return net::IpAddr(net::Ipv4Addr(v ^ 1u));  // the /31 neighbour
  }
  // Host just outside the blackholed prefix, inside the parent.
  std::uint32_t size = 1u << (32 - blackholed.len());
  return net::IpAddr(net::Ipv4Addr(v + size));
}

EfficacyCampaign EfficacyMeasurer::measure(
    const std::vector<workload::Episode>& episodes,
    std::size_t probes_per_group) {
  EfficacyCampaign campaign;
  ActiveBlackholes active;

  for (const auto& episode : episodes) {
    auto prop = engine_.propagate_blackhole(episode.announcement(episode.start));
    ++campaign.events_measured;

    net::IpAddr target = episode.prefix.addr();
    net::IpAddr neighbor = neighbor_target(episode.prefix);

    active.clear();
    active.install_from(prop, episode.prefix, engine_);

    auto selected = probes_.select(episode.user, rng_, probes_per_group);
    bool any_reachable_after = false;
    for (const auto& probe : selected) {
      ProbeMeasurement m;
      m.probe = probe;

      auto during = traceroute_.trace(probe.asn, target, active);
      auto neighbor_trace = traceroute_.trace(probe.asn, neighbor, active);
      m.during_ip = during.ip_path_length();
      m.during_as = during.as_path_length();
      m.neighbor_ip = neighbor_trace.ip_path_length();
      m.neighbor_as = neighbor_trace.as_path_length();

      // The follow-up measurement one hour after withdrawal.
      ActiveBlackholes none;
      auto after = traceroute_.trace(probe.asn, target, none);
      m.after_ip = after.ip_path_length();
      m.after_as = after.as_path_length();
      m.destination_reachable_after = after.reached_destination;
      any_reachable_after |= after.reached_destination;

      if (during.dropped_at) {
        auto origin = graph_.origin_of(target);
        const topology::AsNode* origin_node =
            origin ? graph_.find(*origin) : nullptr;
        bool at_destination = origin && *during.dropped_at == *origin;
        bool at_upstream =
            origin_node &&
            std::find(origin_node->providers.begin(), origin_node->providers.end(),
                      *during.dropped_at) != origin_node->providers.end();
        m.dropped_at_destination_or_upstream = at_destination || at_upstream;
      }
      campaign.measurements.push_back(m);
    }
    if (any_reachable_after) ++campaign.events_with_reachable_after;
  }
  return campaign;
}

}  // namespace bgpbh::dataplane
