// Blackholing efficacy measurement campaign (§10, Fig 9a/9b).
//
// For each blackholing event: select probes (4 groups), pick the
// blackholed host plus a neighbouring non-blackholed host in the
// closest covering prefix, traceroute both *during* the event and one
// hour *after* withdrawal, and compare path lengths.  Only events whose
// destination is reachable again afterwards enter the comparison (the
// paper's artifact filter).
#pragma once

#include <vector>

#include "dataplane/probes.h"
#include "dataplane/traceroute.h"
#include "stats/cdf.h"
#include "workload/scenario.h"

namespace bgpbh::dataplane {

struct ProbeMeasurement {
  Probe probe;
  // IP-level path lengths (to last responding interface).
  std::size_t during_ip = 0, after_ip = 0;
  std::size_t during_as = 0, after_as = 0;
  // Same-time comparison against the neighbouring non-blackholed host.
  std::size_t neighbor_ip = 0, neighbor_as = 0;
  bool destination_reachable_after = false;
  bool dropped_at_destination_or_upstream = false;  // §10: 16% of cases
};

struct EfficacyCampaign {
  std::vector<ProbeMeasurement> measurements;
  std::size_t events_measured = 0;
  std::size_t events_with_reachable_after = 0;

  // Fig 9a/9b inputs.
  stats::Cdf ip_delta_after_vs_during() const;       // after - during
  stats::Cdf ip_delta_neighbor_vs_blackholed() const;
  stats::Cdf as_delta_after_vs_during() const;
  stats::Cdf as_delta_neighbor_vs_blackholed() const;

  double mean_ip_hop_reduction() const;
  double mean_as_hop_reduction() const;
  double fraction_paths_shorter_during() const;
  double fraction_dropped_at_destination_or_upstream() const;
};

class EfficacyMeasurer {
 public:
  EfficacyMeasurer(const topology::AsGraph& graph,
                   const topology::CustomerCones& cones,
                   routing::PropagationEngine& engine, std::uint64_t seed);

  // Measure a set of ground-truth episodes.
  EfficacyCampaign measure(const std::vector<workload::Episode>& episodes,
                           std::size_t probes_per_group = 4);

 private:
  // Neighbouring target: another host in the most specific prefix
  // containing the blackholed host (paper footnote: the /31 neighbour
  // of a /32, else the next less-specific prefix).
  net::IpAddr neighbor_target(const net::Prefix& blackholed) const;

  const topology::AsGraph& graph_;
  routing::PropagationEngine& engine_;
  ForwardingSim forwarding_;
  TracerouteEngine traceroute_;
  ProbeSelector probes_;
  util::Rng rng_;
};

}  // namespace bgpbh::dataplane
