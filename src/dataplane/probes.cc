#include "dataplane/probes.h"

#include <algorithm>

namespace bgpbh::dataplane {

std::vector<Asn> ProbeSelector::candidates(Asn user, ProbeGroup group) const {
  std::vector<Asn> out;
  switch (group) {
    case ProbeGroup::kDownstreamCone: {
      for (Asn asn : cones_.cone(user)) {
        if (asn != user) out.push_back(asn);
      }
      break;
    }
    case ProbeGroup::kUpstreamCone: {
      for (Asn asn : cones_.upstream_cone(user)) {
        if (asn != user) out.push_back(asn);
      }
      break;
    }
    case ProbeGroup::kPeering: {
      const topology::AsNode* node = graph_.find(user);
      if (!node) break;
      out = node->peers;
      for (std::uint32_t ixp_id : node->ixps) {
        const topology::Ixp* ixp = graph_.find_ixp(ixp_id);
        if (!ixp) continue;
        for (Asn member : ixp->members) {
          if (member != user) out.push_back(member);
        }
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      break;
    }
    case ProbeGroup::kInsideUser: {
      out.push_back(user);
      break;
    }
  }
  return out;
}

std::vector<Probe> ProbeSelector::select(Asn user, util::Rng& rng,
                                         std::size_t per_group) const {
  std::vector<Probe> probes;
  const ProbeGroup groups[] = {ProbeGroup::kDownstreamCone,
                               ProbeGroup::kUpstreamCone, ProbeGroup::kPeering,
                               ProbeGroup::kInsideUser};
  for (ProbeGroup group : groups) {
    auto pool = candidates(user, group);
    auto idx = rng.sample_indices(pool.size(), per_group);
    for (auto i : idx) probes.push_back(Probe{pool[i], group});
    // If the group is too small, top up with random ASes (paper: "If a
    // group doesn't have enough probes we select the remaining probes
    // randomly").
    std::size_t missing = per_group - std::min(per_group, idx.size());
    const auto& nodes = graph_.nodes();
    for (std::size_t k = 0; k < missing; ++k) {
      probes.push_back(
          Probe{nodes[rng.uniform(nodes.size())].asn, group});
    }
  }
  return probes;
}

}  // namespace bgpbh::dataplane
