// Data-plane forwarding state and router-level path expansion.
//
// The control-plane simulation decides *where* blackhole null routes
// are installed (providers' ingresses, IXP members honouring the route
// server); this module answers where a packet to a given destination is
// dropped, and expands AS-level paths into router-level (IP) hops so
// the traceroute engine can reproduce the paper's Fig 9a/9b hop-count
// analysis.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "net/patricia.h"
#include "routing/propagation.h"
#include "topology/as_graph.h"

namespace bgpbh::dataplane {

using bgp::Asn;

// The set of (AS, prefix) null routes currently installed.
class ActiveBlackholes {
 public:
  void install(Asn asn, const net::Prefix& prefix);
  void remove(Asn asn, const net::Prefix& prefix);
  // Does `asn` drop traffic destined to `ip` at its ingress?
  bool drops(Asn asn, const net::IpAddr& ip) const;
  std::size_t total_routes() const;
  void clear();

  // Install everything a propagation result implies: provider null
  // routes plus IXP members that honour the route-server route.
  void install_from(const routing::BlackholePropagation& prop,
                    const net::Prefix& prefix,
                    const routing::PropagationEngine& engine);
  void remove_from(const routing::BlackholePropagation& prop,
                   const net::Prefix& prefix,
                   const routing::PropagationEngine& engine);

 private:
  std::map<Asn, net::PrefixTable<bool>> per_as_;
};

// Router-level expansion of one AS on a path.
struct RouterHop {
  net::IpAddr ip;
  Asn asn = 0;
  bool responds = true;  // ICMP TTL-exceeded replies (some are filtered)
};

class ForwardingSim {
 public:
  ForwardingSim(const topology::AsGraph& graph,
                routing::PropagationEngine& engine, std::uint64_t seed);

  // Number of routers a packet crosses inside one AS (1..4, stable).
  std::size_t routers_in_as(Asn asn) const;

  // Router hops for one AS on the way to `dst` (deterministic).
  std::vector<RouterHop> expand_as(Asn asn, const net::IpAddr& dst) const;

  // AS-level forwarding path from src AS toward the destination IP,
  // ending at the origin AS of the destination's covering prefix.
  std::optional<bgp::AsPath> as_path_to(Asn src, const net::IpAddr& dst);

  // Where traffic from `src` to `dst` is dropped: the first AS on the
  // path holding a null route, or nullopt if it reaches the origin.
  std::optional<Asn> drop_point(Asn src, const net::IpAddr& dst,
                                const ActiveBlackholes& blackholes);

  const topology::AsGraph& graph() const { return graph_; }

 private:
  const topology::AsGraph& graph_;
  routing::PropagationEngine& engine_;
  std::uint64_t seed_;
};

}  // namespace bgpbh::dataplane
