#include "dataplane/finegrained.h"

namespace bgpbh::dataplane {

bool FineGrainedRule::matches(const flows::FlowRecord& flow) const {
  if (!prefix.contains(net::IpAddr(flow.dst_ip))) return false;
  if (protocol != 0 && flow.protocol != protocol) return false;
  return flow.dst_port >= port_lo && flow.dst_port <= port_hi;
}

void FineGrainedBlackholes::install(Asn asn, const FineGrainedRule& rule) {
  auto& table = per_as_[asn];
  if (auto* rules = table.find(rule.prefix)) {
    rules->push_back(rule);
  } else {
    table.insert(rule.prefix, {rule});
  }
}

void FineGrainedBlackholes::remove_all(Asn asn, const net::Prefix& prefix) {
  auto it = per_as_.find(asn);
  if (it != per_as_.end()) it->second.erase(prefix);
}

bool FineGrainedBlackholes::drops(Asn asn,
                                  const flows::FlowRecord& flow) const {
  auto it = per_as_.find(asn);
  if (it == per_as_.end()) return false;
  const auto* rules = it->second.lookup(net::IpAddr(flow.dst_ip));
  if (!rules) return false;
  for (const auto& rule : *rules) {
    if (rule.matches(flow)) return true;
  }
  return false;
}

std::size_t FineGrainedBlackholes::total_rules() const {
  std::size_t n = 0;
  for (const auto& [asn, table] : per_as_) {
    table.for_each([&n](const net::Prefix&, const std::vector<FineGrainedRule>& r) {
      n += r.size();
    });
  }
  return n;
}

}  // namespace bgpbh::dataplane
