// RIPE-Atlas-style probe selection (§10).
//
// For each blackholing event the paper requests probes in four groups
// relative to the blackholing user:
//   1. downstream customer cone of the user,
//   2. upstream cone (transitive providers),
//   3. reachable over peering links (bilateral or shared IXP),
//   4. inside the user AS itself,
// and then picks 4 probes uniformly at random from each group.
#pragma once

#include <array>
#include <vector>

#include "topology/as_graph.h"
#include "topology/cone.h"
#include "util/rng.h"

namespace bgpbh::dataplane {

using bgp::Asn;

enum class ProbeGroup : std::uint8_t {
  kDownstreamCone,
  kUpstreamCone,
  kPeering,
  kInsideUser,
};

struct Probe {
  Asn asn = 0;
  ProbeGroup group = ProbeGroup::kDownstreamCone;
};

class ProbeSelector {
 public:
  ProbeSelector(const topology::AsGraph& graph,
                const topology::CustomerCones& cones)
      : graph_(graph), cones_(cones) {}

  // Candidate ASes per group for a given blackholing user.
  std::vector<Asn> candidates(Asn user, ProbeGroup group) const;

  // The paper's selection: up to `per_group` probes per group, topped
  // up from random ASes when a group is too small.
  std::vector<Probe> select(Asn user, util::Rng& rng,
                            std::size_t per_group = 4) const;

 private:
  const topology::AsGraph& graph_;
  const topology::CustomerCones& cones_;
};

}  // namespace bgpbh::dataplane
