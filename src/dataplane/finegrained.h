// Fine-grained blackholing (§11 "Implications").
//
// The paper closes by noting that classic RTBH discards *all* traffic
// to the victim and points to ongoing work on fine-grained blackholing
// where additional match dimensions — notably transport port — restrict
// the drop (Dietzel et al., SOSR'17; SDN-enabled IXPs).  This module
// implements that extension over our data-plane substrate: rules match
// (prefix, protocol, destination-port range) and the evaluator reports
// how much legitimate traffic a port-scoped rule preserves compared to
// classic all-traffic blackholing — the motivating trade-off of §1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "flows/ipfix.h"
#include "net/patricia.h"

namespace bgpbh::dataplane {

using bgp::Asn;

// One fine-grained drop rule as a member/provider would install it.
struct FineGrainedRule {
  net::Prefix prefix;
  // 0 = any protocol; else IPPROTO (6 TCP, 17 UDP).
  std::uint8_t protocol = 0;
  // Destination-port range [lo, hi]; 0..65535 = any.
  std::uint16_t port_lo = 0;
  std::uint16_t port_hi = 65535;

  bool matches(const flows::FlowRecord& flow) const;
  bool is_classic() const {
    return protocol == 0 && port_lo == 0 && port_hi == 65535;
  }
};

// Per-AS rule table with longest-prefix-match on the destination and
// linear scan over the (few) rules per prefix.
class FineGrainedBlackholes {
 public:
  void install(Asn asn, const FineGrainedRule& rule);
  void remove_all(Asn asn, const net::Prefix& prefix);
  // Does `asn` drop this flow at its ingress?
  bool drops(Asn asn, const flows::FlowRecord& flow) const;
  std::size_t total_rules() const;

 private:
  std::map<Asn, net::PrefixTable<std::vector<FineGrainedRule>>> per_as_;
};

// Outcome of replaying a flow mix through classic vs fine-grained rules.
struct MitigationComparison {
  std::uint64_t attack_dropped_classic = 0;
  std::uint64_t attack_dropped_finegrained = 0;
  std::uint64_t legit_dropped_classic = 0;     // collateral damage
  std::uint64_t legit_dropped_finegrained = 0;
  std::uint64_t attack_total = 0;
  std::uint64_t legit_total = 0;

  double collateral_classic() const {
    return legit_total ? static_cast<double>(legit_dropped_classic) / legit_total
                       : 0.0;
  }
  double collateral_finegrained() const {
    return legit_total
               ? static_cast<double>(legit_dropped_finegrained) / legit_total
               : 0.0;
  }
  double attack_coverage_finegrained() const {
    return attack_total
               ? static_cast<double>(attack_dropped_finegrained) / attack_total
               : 0.0;
  }
};

// Replay flows against a classic rule (prefix-only) and a fine-grained
// rule set at one dropping AS.  `is_attack(flow)` labels ground truth.
template <typename AttackPredicate>
MitigationComparison compare_mitigations(
    Asn dropping_as, const net::Prefix& victim,
    const std::vector<FineGrainedRule>& finegrained_rules,
    const std::vector<flows::FlowRecord>& traffic,
    AttackPredicate&& is_attack) {
  FineGrainedBlackholes classic;
  classic.install(dropping_as, FineGrainedRule{victim});
  FineGrainedBlackholes fine;
  for (const auto& rule : finegrained_rules) fine.install(dropping_as, rule);

  MitigationComparison cmp;
  for (const auto& flow : traffic) {
    bool attack = is_attack(flow);
    (attack ? cmp.attack_total : cmp.legit_total) += flow.bytes;
    if (classic.drops(dropping_as, flow)) {
      (attack ? cmp.attack_dropped_classic : cmp.legit_dropped_classic) +=
          flow.bytes;
    }
    if (fine.drops(dropping_as, flow)) {
      (attack ? cmp.attack_dropped_finegrained : cmp.legit_dropped_finegrained) +=
          flow.bytes;
    }
  }
  return cmp;
}

}  // namespace bgpbh::dataplane
