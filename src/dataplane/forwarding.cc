#include "dataplane/forwarding.h"

#include <set>

namespace bgpbh::dataplane {

namespace {
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c = 0) {
  util::SplitMix64 sm(a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                      (c * 0xc2b2ae3d27d4eb4fULL));
  return sm.next();
}
double unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }
}  // namespace

void ActiveBlackholes::install(Asn asn, const net::Prefix& prefix) {
  per_as_[asn].insert(prefix, true);
}

void ActiveBlackholes::remove(Asn asn, const net::Prefix& prefix) {
  auto it = per_as_.find(asn);
  if (it == per_as_.end()) return;
  it->second.erase(prefix);
}

bool ActiveBlackholes::drops(Asn asn, const net::IpAddr& ip) const {
  auto it = per_as_.find(asn);
  if (it == per_as_.end()) return false;
  return it->second.covered(ip);
}

std::size_t ActiveBlackholes::total_routes() const {
  std::size_t n = 0;
  for (const auto& [asn, table] : per_as_) n += table.size();
  return n;
}

void ActiveBlackholes::clear() { per_as_.clear(); }

namespace {

// ASes whose accepted copy of the blackhole route chains through an
// activated provider: their next hop for the prefix resolves into the
// provider's null interface, so their own traffic dies too.
std::vector<Asn> chained_holders(const routing::BlackholePropagation& prop) {
  std::vector<Asn> out;
  std::set<Asn> providers(prop.activated_providers.begin(),
                          prop.activated_providers.end());
  for (const auto& holder : prop.holders) {
    if (holder.hops_from_user == 0 || holder.via_route_server) continue;
    if (providers.contains(holder.holder)) continue;
    const auto& hops = holder.path.hops();
    for (std::size_t i = 1; i < hops.size(); ++i) {
      if (providers.contains(hops[i])) {
        out.push_back(holder.holder);
        break;
      }
    }
  }
  return out;
}

}  // namespace

void ActiveBlackholes::install_from(const routing::BlackholePropagation& prop,
                                    const net::Prefix& prefix,
                                    const routing::PropagationEngine& engine) {
  if (prop.control_plane_only) return;  // misconfigured: no drops anywhere
  for (Asn provider : prop.activated_providers) install(provider, prefix);
  for (Asn holder : chained_holders(prop)) install(holder, prefix);
  for (const auto& [ixp_id, member] : prop.rs_receivers) {
    if (engine.honours_rs_blackhole(ixp_id, member)) install(member, prefix);
  }
}

void ActiveBlackholes::remove_from(const routing::BlackholePropagation& prop,
                                   const net::Prefix& prefix,
                                   const routing::PropagationEngine& engine) {
  for (Asn provider : prop.activated_providers) remove(provider, prefix);
  for (Asn holder : chained_holders(prop)) remove(holder, prefix);
  for (const auto& [ixp_id, member] : prop.rs_receivers) {
    if (engine.honours_rs_blackhole(ixp_id, member)) remove(member, prefix);
  }
}

ForwardingSim::ForwardingSim(const topology::AsGraph& graph,
                             routing::PropagationEngine& engine,
                             std::uint64_t seed)
    : graph_(graph), engine_(engine), seed_(seed) {}

std::size_t ForwardingSim::routers_in_as(Asn asn) const {
  // Transit networks are physically larger: 3-5 router hops; stubs 2-3
  // (access + aggregation + host-facing edge).
  const topology::AsNode* node = graph_.find(asn);
  std::uint64_t h = mix(seed_, 0x4001, asn);
  if (node && node->tier != topology::Tier::kStub) {
    return 3 + h % 3;
  }
  return 2 + h % 2;
}

std::vector<RouterHop> ForwardingSim::expand_as(Asn asn,
                                                const net::IpAddr& dst) const {
  std::vector<RouterHop> hops;
  const topology::AsNode* node = graph_.find(asn);
  std::size_t n = routers_in_as(asn);
  for (std::size_t i = 0; i < n; ++i) {
    RouterHop hop;
    hop.asn = asn;
    // Router addresses live in the AS's own block, high /24.
    std::uint32_t base = node ? node->v4_block.addr().v4().value()
                              : (192u << 24) | (0u << 16);
    std::uint64_t hh = mix(seed_, 0x4002 + i, asn);
    hop.ip = net::IpAddr(net::Ipv4Addr(base | 0xFE00u | (static_cast<std::uint32_t>(hh) & 0xFF)));
    hop.responds = unit(mix(seed_, 0x4003 + i, asn)) > 0.07;  // ICMP filtering
    hops.push_back(hop);
  }
  (void)dst;
  return hops;
}

std::optional<bgp::AsPath> ForwardingSim::as_path_to(Asn src,
                                                     const net::IpAddr& dst) {
  auto origin = graph_.origin_of(dst);
  if (!origin) return std::nullopt;
  if (*origin == src) return bgp::AsPath({src});
  return engine_.baseline_path(src, *origin);
}

std::optional<Asn> ForwardingSim::drop_point(Asn src, const net::IpAddr& dst,
                                             const ActiveBlackholes& blackholes) {
  auto path = as_path_to(src, dst);
  if (!path) return std::nullopt;
  for (Asn asn : path->hops()) {
    if (asn == src) continue;  // the source does not blackhole itself
    if (blackholes.drops(asn, dst)) return asn;
  }
  return std::nullopt;
}

}  // namespace bgpbh::dataplane
