// Traceroute engine over the simulated data plane (§10 active
// measurements).  Reproduces the observable the paper relies on: the
// number of IP-level and AS-level hops to the *last responding
// interface*, during vs after a blackholing event.
#pragma once

#include <optional>
#include <vector>

#include "dataplane/forwarding.h"

namespace bgpbh::dataplane {

struct TracerouteResult {
  std::vector<RouterHop> hops;      // responding and silent hops in order
  bool reached_destination = false; // destination host replied
  std::optional<Asn> dropped_at;    // null-routed inside this AS

  // Hop count to the last responding interface ("path length", §10).
  std::size_t ip_path_length() const;
  // Number of distinct ASes up to the last responding interface.
  std::size_t as_path_length() const;
};

class TracerouteEngine {
 public:
  explicit TracerouteEngine(ForwardingSim& forwarding)
      : forwarding_(forwarding) {}

  // Trace from a probe in `src_asn` to `dst`, honouring active null
  // routes: the trace ends at the ingress of the dropping AS.
  TracerouteResult trace(Asn src_asn, const net::IpAddr& dst,
                         const ActiveBlackholes& blackholes);

 private:
  ForwardingSim& forwarding_;
};

}  // namespace bgpbh::dataplane
