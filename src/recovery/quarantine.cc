#include "recovery/quarantine.h"

#include <string>

#include "util/log.h"

namespace bgpbh::recovery {

PoisonQuarantine::PoisonQuarantine(std::size_t num_producers,
                                   QuarantineConfig config)
    : config_(config), counts_(num_producers == 0 ? 1 : num_producers) {
  if (!config_.metrics) return;
  config_.metrics->describe(
      "recovery.quarantine.rejected",
      "Poison updates rejected at ingest (absurd path/community sizes)");
  config_.metrics->describe(
      "recovery.quarantine.over_budget",
      "Producers whose poison count exceeded the error budget (alarm)");
  rejected_ctr_ = &config_.metrics->counter("recovery.quarantine.rejected");
  over_budget_gauge_ =
      &config_.metrics->gauge("recovery.quarantine.over_budget");
}

bool PoisonQuarantine::admit(const routing::FeedUpdate& update,
                             std::size_t producer) {
  const auto& body = update.update.body;
  const std::size_t hops = body.as_path.length();
  const std::size_t communities =
      body.communities.classic().size() + body.communities.large().size();
  if (hops <= config_.max_as_path_hops &&
      communities <= config_.max_communities) {
    return true;
  }
  const std::size_t slot = producer < counts_.size() ? producer : 0;
  counts_[slot].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  if (rejected_ctr_) rejected_ctr_->add();
  if (over_budget_gauge_) {
    std::size_t over = 0;
    for (const auto& c : counts_) {
      if (c.load(std::memory_order_relaxed) > config_.error_budget) ++over;
    }
    over_budget_gauge_->set(static_cast<double>(over));
  }
  static util::LogRateLimiter limit(/*per_second=*/0.5, /*burst=*/3.0);
  if (limit.allow()) {
    util::Log(util::LogLevel::kWarn, "quarantine")
        .msg("rejected poison update")
        .kv("producer", slot)
        .kv("as_path_hops", hops)
        .kv("communities", communities)
        .kv("suppressed", limit.last_suppressed());
  }
  return false;
}

api::ComponentHealth PoisonQuarantine::component_health() const {
  api::ComponentHealth health;
  health.component = "quarantine";
  std::uint64_t worst = 0;
  std::size_t worst_producer = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n > worst) {
      worst = n;
      worst_producer = i;
    }
  }
  if (worst <= config_.error_budget) return health;
  health.state = api::HealthState::kDegraded;
  health.reason = "producer " + std::to_string(worst_producer) + " rejected " +
                  std::to_string(worst) +
                  " poison updates (budget: " +
                  std::to_string(config_.error_budget) + ")";
  return health;
}

}  // namespace bgpbh::recovery
