// Poison-update quarantine: the ingest-side input validator of the
// recovery plane.
//
// A malformed or hostile feed can carry updates that are syntactically
// valid BGP but absurd — AS paths thousands of hops long, community
// sets with tens of thousands of entries.  Those are classic
// amplification vectors: every downstream stage (dictionary scan, path
// walk, checkpoint serialization) is linear in them, so one poisoned
// peer can starve every shard.  The quarantine rejects such updates at
// session.push() time, BEFORE they enter the pipeline, and accounts
// for every rejection per producer — never silent.
//
// An error budget turns sustained poison into a health signal: once
// any producer's rejection count exceeds the budget, the "quarantine"
// component reports kDegraded through api::SessionHealth (the feed is
// either broken or adversarial; an operator should look), while the
// session keeps processing the clean remainder.
//
// Default limits are far above anything a real table carries (the
// longest AS paths ever observed in the wild are a few hundred hops of
// prepending; RFC-compliant community attributes cap out well below a
// thousand entries), so legitimate workloads never trip them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/health.h"
#include "routing/collectors.h"
#include "telemetry/metrics.h"

namespace bgpbh::recovery {

struct QuarantineConfig {
  // Reject announcements whose AS path exceeds this many hops.
  std::size_t max_as_path_hops = 1024;
  // Reject announcements whose community attribute exceeds this many
  // entries (classic + large combined).
  std::size_t max_communities = 4096;
  // kDegraded once any single producer's rejection count exceeds this.
  std::uint64_t error_budget = 100;
  // Optional recovery.quarantine.* instruments (must outlive the
  // quarantine).
  telemetry::MetricsRegistry* metrics = nullptr;
};

class PoisonQuarantine : public api::HealthReporter {
 public:
  PoisonQuarantine(std::size_t num_producers, QuarantineConfig config);

  PoisonQuarantine(const PoisonQuarantine&) = delete;
  PoisonQuarantine& operator=(const PoisonQuarantine&) = delete;

  // True if the update is clean; false rejects it and charges
  // `producer`'s poison counter.  Thread-safe (counters are atomics) —
  // producers validate concurrently.
  bool admit(const routing::FeedUpdate& update, std::size_t producer);

  std::uint64_t poisoned(std::size_t producer) const {
    return producer < counts_.size()
               ? counts_[producer].load(std::memory_order_relaxed)
               : 0;
  }
  std::uint64_t total_poisoned() const {
    return total_.load(std::memory_order_relaxed);
  }

  // "quarantine" component: kDegraded once any producer blew its
  // error budget.
  api::ComponentHealth component_health() const override;

 private:
  QuarantineConfig config_;
  // Fixed-size at construction; never resized (atomics don't move).
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  telemetry::Counter* rejected_ctr_ = nullptr;
  telemetry::Gauge* over_budget_gauge_ = nullptr;
};

}  // namespace bgpbh::recovery
