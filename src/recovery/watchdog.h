// Watchdog: the supervision half of the recovery plane.
//
// Every shard worker bumps a heartbeat counter once per loop iteration
// (stream::WorkerPool), so a worker that is parked on an empty queue
// still ticks while one wedged inside the engine — or deadlocked —
// goes silent.  The watchdog samples each shard's heartbeat against
// its queue depth on its own thread: a shard whose heartbeat has not
// moved for `stall_deadline` WHILE its queue holds work is STALLED.
// Silence with an empty queue is just idleness and never alarms.
//
// A stall raises the recovery.watchdog.stalled_shards alarm gauge,
// emits a rate-limited warning, and degrades the session health plane
// ("watchdog" component, api::SessionHealth) with the stalled shard
// list — it deliberately does NOT kill anything: the supervision plane
// observes and reports; the operator (or an external supervisor
// watching the gauge) owns the restart decision, and restart is safe
// because checkpoints make it lossless.
//
// The providers are plain std::functions so the unit tests drive the
// detector with fake clocks and hand-rolled counters — no pipeline
// needed (tests/test_recovery.cc).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "api/health.h"
#include "telemetry/metrics.h"

namespace bgpbh::recovery {

// One supervised shard, expressed as callables so the watchdog never
// touches pipeline internals directly.  Both must be callable from the
// watchdog thread at any time (read atomics, not mutating state).
struct WatchedShard {
  std::function<std::uint64_t()> heartbeat;  // monotone liveness counter
  std::function<std::size_t()> queue_depth;  // pending work for the shard
};

struct WatchdogConfig {
  // How often the watchdog samples the shards.
  std::chrono::milliseconds poll = std::chrono::milliseconds(50);
  // A shard is stalled once its heartbeat has not advanced for this
  // long while its queue was non-empty at both ends of the window.
  std::chrono::milliseconds stall_deadline = std::chrono::seconds(2);
  // Optional recovery.watchdog.* instruments (must outlive the
  // watchdog).
  telemetry::MetricsRegistry* metrics = nullptr;
};

class Watchdog : public api::HealthReporter {
 public:
  Watchdog(std::vector<WatchedShard> shards, WatchdogConfig config);
  ~Watchdog() override;

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start();
  void stop();

  // One detector pass at an explicit instant — the testing seam the
  // background thread also uses, so tests exercise the real logic
  // without sleeping.
  void scan_once(std::chrono::steady_clock::time_point now);

  // Currently-stalled shard count (the alarm condition).
  std::size_t stalled_shards() const {
    return stalled_now_.load(std::memory_order_relaxed);
  }
  // Total stall episodes detected (a shard entering stall counts once
  // per episode).
  std::uint64_t stalls_detected() const {
    return stalls_total_.load(std::memory_order_relaxed);
  }

  // "watchdog" component: kDegraded while any shard is stalled.
  api::ComponentHealth component_health() const override;

 private:
  struct ShardTrack {
    std::uint64_t last_heartbeat = 0;
    std::chrono::steady_clock::time_point last_progress{};
    bool primed = false;   // first sample taken
    bool stalled = false;  // currently past the deadline
  };

  void loop();

  std::vector<WatchedShard> shards_;
  WatchdogConfig config_;
  std::vector<ShardTrack> tracks_;  // watchdog thread (or scan_once caller)

  std::atomic<std::size_t> stalled_now_{0};
  std::atomic<std::uint64_t> stalls_total_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;

  telemetry::Gauge* stalled_gauge_ = nullptr;
  telemetry::Counter* stalls_ctr_ = nullptr;
};

}  // namespace bgpbh::recovery
