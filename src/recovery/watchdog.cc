#include "recovery/watchdog.h"

#include <string>

#include "util/log.h"

namespace bgpbh::recovery {

Watchdog::Watchdog(std::vector<WatchedShard> shards, WatchdogConfig config)
    : shards_(std::move(shards)),
      config_(config),
      tracks_(shards_.size()) {
  if (!config_.metrics) return;
  config_.metrics->describe(
      "recovery.watchdog.stalled_shards",
      "Shards whose heartbeat is frozen with work queued (alarm)");
  config_.metrics->describe("recovery.watchdog.stalls_total",
                            "Stall episodes detected since start");
  stalled_gauge_ = &config_.metrics->gauge("recovery.watchdog.stalled_shards");
  stalls_ctr_ = &config_.metrics->counter("recovery.watchdog.stalls_total");
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { loop(); });
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, config_.poll, [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    scan_once(std::chrono::steady_clock::now());
    lock.lock();
  }
}

void Watchdog::scan_once(std::chrono::steady_clock::time_point now) {
  std::size_t stalled = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardTrack& track = tracks_[i];
    const std::uint64_t beat = shards_[i].heartbeat();
    const std::size_t depth = shards_[i].queue_depth();
    if (!track.primed || beat != track.last_heartbeat || depth == 0) {
      // Progress, or nothing to do: either way the shard is alive (an
      // empty queue resets the window — silence while idle is normal).
      track.last_heartbeat = beat;
      track.last_progress = now;
      track.primed = true;
      track.stalled = false;
      continue;
    }
    if (now - track.last_progress >= config_.stall_deadline) {
      if (!track.stalled) {
        track.stalled = true;
        stalls_total_.fetch_add(1, std::memory_order_relaxed);
        if (stalls_ctr_) stalls_ctr_->add();
        static util::LogRateLimiter limit(/*per_second=*/0.5, /*burst=*/3.0);
        if (limit.allow()) {
          util::Log(util::LogLevel::kWarn, "watchdog")
              .msg("shard stalled: heartbeat frozen with work queued")
              .kv("shard", i)
              .kv("queue_depth", depth)
              .kv("suppressed", limit.last_suppressed());
        }
      }
    }
    if (track.stalled) ++stalled;
  }
  stalled_now_.store(stalled, std::memory_order_relaxed);
  if (stalled_gauge_) stalled_gauge_->set(static_cast<double>(stalled));
}

api::ComponentHealth Watchdog::component_health() const {
  api::ComponentHealth health;
  health.component = "watchdog";
  const std::size_t stalled = stalled_shards();
  if (stalled == 0) return health;
  health.state = api::HealthState::kDegraded;
  health.reason = std::to_string(stalled) +
                  " shard(s) stalled: heartbeat frozen past deadline with "
                  "work queued";
  return health;
}

}  // namespace bgpbh::recovery
