#include "recovery/coordinator.h"

#include <utility>

#include "util/log.h"

namespace bgpbh::recovery {

CheckpointCoordinator::CheckpointCoordinator(CoordinatorHooks hooks,
                                             CoordinatorConfig config)
    : hooks_(std::move(hooks)), config_(std::move(config)) {
  if (!config_.metrics) return;
  config_.metrics->describe("recovery.checkpoint.written",
                            "Checkpoints durably written");
  config_.metrics->describe(
      "recovery.checkpoint.abandoned",
      "Checkpoint cuts abandoned (shutdown race, degraded disk, failed "
      "write)");
  config_.metrics->describe("recovery.checkpoint.duration_ns",
                            "Wall time per checkpoint cut (ns: rendezvous + "
                            "barrier + serialize + fsync)");
  config_.metrics->describe("recovery.checkpoint.last_seq",
                            "Seq of the newest durable checkpoint");
  written_ctr_ = &config_.metrics->counter("recovery.checkpoint.written");
  abandoned_ctr_ = &config_.metrics->counter("recovery.checkpoint.abandoned");
  duration_hist_ =
      &config_.metrics->histogram("recovery.checkpoint.duration_ns");
  last_seq_gauge_ = &config_.metrics->gauge("recovery.checkpoint.last_seq");
}

CheckpointCoordinator::~CheckpointCoordinator() { stop(); }

void CheckpointCoordinator::start() {
  if (config_.checkpoint_every == 0 || thread_.joinable()) return;
  thread_ = std::thread([this] { loop(); });
}

void CheckpointCoordinator::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void CheckpointCoordinator::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, config_.poll, [this] { return stopping_; });
    if (stopping_) return;
    const std::uint64_t pushed = hooks_.updates_pushed();
    if (pushed - last_trigger_ < config_.checkpoint_every) continue;
    // Advance the trigger before the cut: a persistently failing disk
    // must not turn every poll tick into a full rendezvous.
    last_trigger_ = pushed;
    lock.unlock();
    checkpoint_now();
    lock.lock();
  }
}

bool CheckpointCoordinator::checkpoint_now() {
  std::lock_guard<std::mutex> serial(serial_mu_);
  const auto t0 = std::chrono::steady_clock::now();

  // Grouper-capture ticket: filled on the dispatch thread (ordered
  // with the event stream) or inline when there is no dispatcher.
  // Stack-allocated, so a queued control MUST be awaited before this
  // function returns on every path.
  struct GrouperTicket {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::vector<core::PrefixEvent> correlated;
    std::vector<core::PrefixEvent> grouped;
  } ticket;
  bool control_queued = false;

  std::vector<stream::ShardCapture> captures;
  storage::SpillWriter::BarrierResult barrier;
  bool barrier_reached = false;

  const bool captured = hooks_.capture(
      [&] {
        // Runs with ALL workers held at the cut: every pre-cut chunk
        // is already in the spill and dispatch queues, and no post-cut
        // chunk can be enqueued until the workers are released — so
        // both items below land exactly at the cut in queue order.
        if (hooks_.submit_control) {
          control_queued = hooks_.submit_control([this, &ticket] {
            std::vector<core::PrefixEvent> correlated, grouped;
            hooks_.capture_grouper(correlated, grouped);
            {
              std::lock_guard<std::mutex> lk(ticket.m);
              ticket.correlated = std::move(correlated);
              ticket.grouped = std::move(grouped);
              ticket.done = true;
            }
            ticket.cv.notify_all();
          });
        }
        if (!control_queued && hooks_.capture_grouper) {
          // No dispatcher (or it is stopping): the grouper is not
          // being fed concurrently, capture it here at the cut.
          hooks_.capture_grouper(ticket.correlated, ticket.grouped);
          ticket.done = true;
        }
        barrier_reached = hooks_.barrier && hooks_.barrier(barrier);
      },
      captures);

  // The ticket is on this stack frame: if a control was queued, wait
  // for the dispatch thread to run it no matter how the cut ends
  // (stop() drains the queue before joining, so it always runs).
  if (control_queued) {
    std::unique_lock<std::mutex> lk(ticket.m);
    ticket.cv.wait(lk, [&ticket] { return ticket.done; });
  }

  auto abandon = [&](const char* why) {
    abandoned_.fetch_add(1, std::memory_order_relaxed);
    if (abandoned_ctr_) abandoned_ctr_->add();
    last_failed_.store(true, std::memory_order_relaxed);
    util::Log(util::LogLevel::kWarn, "recovery")
        .msg("checkpoint abandoned")
        .kv("reason", why);
    return false;
  };

  if (!captured) return abandon("pipeline shut down during rendezvous");
  if (!barrier_reached) return abandon("spill writer stopped at barrier");
  if (!barrier.ok) return abandon("disk degraded: durable position stale");

  Checkpoint cp;
  cp.seq = next_seq_;
  cp.num_shards = config_.num_shards;
  cp.num_producers = config_.num_producers;
  cp.includes_table_dump =
      includes_table_dump_.load(std::memory_order_relaxed);
  cp.position = barrier.pos;
  cp.shards.reserve(captures.size());
  for (stream::ShardCapture& capture : captures) {
    cp.shards.push_back(ShardCheckpoint{std::move(capture.watermarks),
                                        std::move(capture.open_state)});
  }
  cp.correlated = std::move(ticket.correlated);
  cp.grouped = std::move(ticket.grouped);

  if (!write_checkpoint(config_.dir, cp, config_.keep)) {
    // Burn the seq anyway: a half-written tmp file must never collide
    // with a retried cut's final name.
    ++next_seq_;
    return abandon("checkpoint file write failed");
  }
  ++next_seq_;

  // Durable: NOW the log prefix older checkpoints pinned can go.
  if (hooks_.set_retention_floor) hooks_.set_retention_floor(cp.position.seq);

  written_.fetch_add(1, std::memory_order_relaxed);
  last_seq_.store(cp.seq, std::memory_order_relaxed);
  last_failed_.store(false, std::memory_order_relaxed);
  if (written_ctr_) written_ctr_->add();
  if (last_seq_gauge_) last_seq_gauge_->set(static_cast<double>(cp.seq));
  if (duration_hist_) {
    duration_hist_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  return true;
}

api::ComponentHealth CheckpointCoordinator::component_health() const {
  api::ComponentHealth health;
  health.component = "checkpoint";
  if (!last_failed_.load(std::memory_order_relaxed)) return health;
  health.state = api::HealthState::kDegraded;
  health.reason =
      "last checkpoint cut failed; recovery point is stale (newest durable "
      "seq: " +
      std::to_string(last_seq_.load(std::memory_order_relaxed)) + ")";
  return health;
}

}  // namespace bgpbh::recovery
