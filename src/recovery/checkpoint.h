// Crash-consistent checkpoints of the live pipeline's open state.
//
// The segment log (src/storage/) already makes CLOSED events durable;
// what a SIGKILL used to lose was everything still open: per-shard
// ActiveState tables, the grouper's §9 layers, and the knowledge of
// how far each producer's feed had been consumed.  A checkpoint
// captures exactly that, cut at a quiesced rendezvous point
// (stream::WorkerPool::capture), and stamps it with
//
//   * per-(shard, producer) watermarks — how many sub-update refs each
//     worker had processed from each producer at the cut, and
//   * the durable log position (storage::DurablePos) reported by the
//     spill barrier that ran inside the same cut,
//
// so restart = load the newest valid checkpoint + truncate the log to
// its position + re-feed the source with each producer skipping its
// watermarked prefix.  Routing is deterministic (stream::shard_for),
// so the skip replays the exact sub-update suffix each shard had not
// yet seen: open state is restored byte-identically and no closed
// event is ever duplicated or dropped.
//
// File format (all integers big-endian, net::BufWriter):
//
//   u32 magic "BHCK" | u8 version | payload |
//   u32 payload_len | u32 crc32(payload) | u32 magic
//
// The whole-file trailer is validated before any payload field is
// trusted, and the payload decoder is fuzz-hardened like the record
// codec (tests/test_fuzz_codecs.cc): torn writes, bit flips and
// truncations are rejected, never mis-loaded.  load_latest_checkpoint
// falls back to the previous file on any invalid newest one — which is
// why write_checkpoint keeps the last two and writes atomically
// (tmp + fsync + rename + directory fsync).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/events.h"
#include "net/bytes.h"
#include "storage/segment_writer.h"

namespace bgpbh::recovery {

inline constexpr std::uint32_t kCheckpointMagic = 0x4248434B;  // "BHCK"
inline constexpr std::uint8_t kCheckpointVersion = 1;
// magic(4) + version(1) ... payload_len(4) + crc(4) + magic(4).
inline constexpr std::size_t kCheckpointHeaderBytes = 5;
inline constexpr std::size_t kCheckpointTrailerBytes = 12;

// One shard's slice of the cut: the watermarks vector is indexed by
// producer (always exactly num_producers long) and the open state is
// the engine's exported ActiveState table in deterministic key order.
struct ShardCheckpoint {
  std::vector<std::uint64_t> watermarks;
  std::vector<core::OpenEventState> open_state;
  friend bool operator==(const ShardCheckpoint&,
                         const ShardCheckpoint&) = default;
};

struct Checkpoint {
  // Monotone ordinal; newest wins at load time and names the file.
  std::uint64_t seq = 0;
  std::uint32_t num_shards = 0;
  std::uint32_t num_producers = 0;
  // True once the session's initial table dump has been folded in: a
  // recovered session must then SKIP init_from_table_dump (the dump's
  // opens are part of the captured state and the replayed stream).
  bool includes_table_dump = false;
  // Durable log position at the cut (spill barrier result): every
  // closed event the checkpoint's watermarks account for is on disk at
  // or before this position.
  storage::DurablePos position;
  std::vector<ShardCheckpoint> shards;
  // LiveGrouper layers at the cut (empty when no sinks dispatch).
  std::vector<core::PrefixEvent> correlated;
  std::vector<core::PrefixEvent> grouped;
  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

// Per-producer accepted-update totals implied by a checkpoint cut:
// totals[p] = sum over shards of watermarks[p].  At a fully drained
// cut (empty shard queues) routing determinism makes this exactly the
// number of sub-updates producer p had pushed — the replay index a
// fabric client resumes a remote shard's stream from.
std::vector<std::uint64_t> producer_totals(const Checkpoint& cp);

// ---- payload codec (fuzz-hardened, same discipline as record_codec) ---

void encode_checkpoint_payload(const Checkpoint& cp, net::BufWriter& out);
std::optional<Checkpoint> decode_checkpoint_payload(net::BufReader& in);

// Frames payload with the header + CRC trailer described above.
std::vector<std::uint8_t> encode_checkpoint_file(const Checkpoint& cp);
// Validates framing + CRC + payload; nullopt on ANY defect.
std::optional<Checkpoint> decode_checkpoint_file(
    std::span<const std::uint8_t> file);

// ---- file I/O ---------------------------------------------------------

// "checkpoint-000042.ckpt".
std::string checkpoint_file_name(std::uint64_t seq);
// Inverse; 0 for names that are not checkpoint files (seq starts at 1).
std::uint64_t parse_checkpoint_seq(const std::string& file_name);

// Atomically writes cp into `dir` (tmp file + fsync + rename + dir
// fsync) and prunes all but the newest `keep` checkpoints.  False on
// any I/O failure — the tmp file is removed and prior checkpoints are
// untouched, so a failed write never costs recoverability.
bool write_checkpoint(const std::string& dir, const Checkpoint& cp,
                      std::size_t keep = 2);

struct LoadResult {
  Checkpoint checkpoint;
  // Newer checkpoint files that failed validation and were skipped
  // (torn final write, bit rot) before this one loaded.
  std::uint64_t skipped_corrupt = 0;
};

// Scans `dir` newest-first and returns the first checkpoint that
// validates end to end; nullopt when none does (or the dir is empty).
std::optional<LoadResult> load_latest_checkpoint(const std::string& dir);

// Truncates the segment log in `dir` to exactly the durable prefix a
// checkpoint covers: segments newer than pos.seq are deleted and the
// segment AT pos.seq is rewritten to its first pos.records records,
// footer-less (SegmentWriter::open's torn-segment recovery reseals it).
// pos.records == 0 removes that segment entirely.  False when the
// on-disk log holds FEWER valid records than the checkpoint's durable
// position claims — the log is then corrupted past fsync's promise and
// recovery must not proceed silently.
bool truncate_log(const std::string& dir, storage::DurablePos pos);

}  // namespace bgpbh::recovery
