// CheckpointCoordinator: decides WHEN to cut a checkpoint and
// orchestrates the cut across the three planes that must agree on it:
//
//   1. stream::WorkerPool::capture holds every shard worker at a batch
//      boundary (each worker force-drains its closed events into the
//      store first, so every pre-cut chunk is already in the spill and
//      dispatch queues);
//   2. while the workers are held, the coordinator enqueues a spill
//      barrier (ordered with the chunks — the writer thread lands
//      everything pre-cut, then reports the durable log position) and
//      a dispatch control item (ordered with the event stream — it
//      captures the LiveGrouper exactly at the cut);
//   3. workers resume; the coordinator assembles the Checkpoint from
//      the captured shard state + barrier position + grouper layers
//      and writes it atomically (src/recovery/checkpoint.h).
//
// Only after the checkpoint file is durably on disk does the retention
// floor advance (storage::SpillWriter::set_retention_floor), so the
// log suffix a checkpoint needs for replay is never retired before a
// NEWER checkpoint supersedes it.  A barrier that reports !ok (disk
// degraded, backlog parked in memory) abandons the cut: the previous
// checkpoint stays authoritative and nothing advances.
//
// All pipeline/session touch-points are std::function hooks, so the
// coordinator is unit-testable without a session and the session wires
// it up without a dependency cycle.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/health.h"
#include "core/events.h"
#include "recovery/checkpoint.h"
#include "storage/spill.h"
#include "stream/worker_pool.h"
#include "telemetry/metrics.h"

namespace bgpbh::recovery {

struct CoordinatorHooks {
  // stream::StreamPipeline::capture — rendezvous + run the callback
  // while all workers are held.  False once the pipeline shut down.
  std::function<bool(const std::function<void()>&,
                     std::vector<stream::ShardCapture>&)>
      capture;
  // storage::SpillWriter::barrier — blocks until the writer thread
  // lands everything enqueued before it.  Called inside the rendezvous
  // callback so the barrier is ordered after every pre-cut chunk.
  std::function<bool(storage::SpillWriter::BarrierResult&)> barrier;
  // api::SinkDispatcher::submit_control, or null when the session has
  // no dispatcher (the grouper is then unfed and captured inline).
  std::function<bool(std::function<void()>)> submit_control;
  // api::LiveGrouper::capture_layers.
  std::function<void(std::vector<core::PrefixEvent>&,
                     std::vector<core::PrefixEvent>&)>
      capture_grouper;
  // storage::SpillWriter::set_retention_floor; called only after a
  // checkpoint is durably written.
  std::function<void(std::uint64_t)> set_retention_floor;
  // Session-level accepted-update count (cadence trigger).
  std::function<std::uint64_t()> updates_pushed;
};

struct CoordinatorConfig {
  std::string dir;
  std::uint32_t num_shards = 1;
  std::uint32_t num_producers = 1;
  // Cut a checkpoint every this many accepted updates (0 disables the
  // cadence thread; checkpoint_now() still works).
  std::uint64_t checkpoint_every = 0;
  // Cadence thread sampling interval.
  std::chrono::milliseconds poll = std::chrono::milliseconds(20);
  // Checkpoint files retained on disk (newest N).
  std::size_t keep = 2;
  telemetry::MetricsRegistry* metrics = nullptr;
};

class CheckpointCoordinator : public api::HealthReporter {
 public:
  CheckpointCoordinator(CoordinatorHooks hooks, CoordinatorConfig config);
  ~CheckpointCoordinator() override;

  CheckpointCoordinator(const CheckpointCoordinator&) = delete;
  CheckpointCoordinator& operator=(const CheckpointCoordinator&) = delete;

  // Recovery seeding, before start(): the next checkpoint's ordinal
  // (loaded seq + 1) and whether the table dump is already part of the
  // captured stream.
  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }
  void set_includes_table_dump(bool v) { includes_table_dump_ = v; }

  void start();  // cadence thread (no-op when checkpoint_every == 0)
  void stop();

  // Cut one checkpoint now.  Serialized against the cadence thread;
  // false when the cut was abandoned (pipeline shut down, disk
  // degraded at the barrier, or the file write failed) — the previous
  // checkpoint then remains authoritative.
  bool checkpoint_now();

  std::uint64_t checkpoints_written() const {
    return written_.load(std::memory_order_relaxed);
  }
  std::uint64_t checkpoints_abandoned() const {
    return abandoned_.load(std::memory_order_relaxed);
  }
  // Seq of the newest durable checkpoint (0 = none yet).
  std::uint64_t last_checkpoint_seq() const {
    return last_seq_.load(std::memory_order_relaxed);
  }

  // "checkpoint" component: kDegraded while the most recent cut
  // failed (recoverability is stale, not lost).
  api::ComponentHealth component_health() const override;

 private:
  void loop();

  CoordinatorHooks hooks_;
  CoordinatorConfig config_;

  std::mutex serial_mu_;  // one cut at a time (cadence vs explicit)
  std::uint64_t next_seq_ = 1;           // guarded by serial_mu_
  std::atomic<bool> includes_table_dump_{false};

  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> abandoned_{0};
  std::atomic<std::uint64_t> last_seq_{0};
  std::atomic<bool> last_failed_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t last_trigger_ = 0;  // cadence thread only
  std::thread thread_;

  telemetry::Counter* written_ctr_ = nullptr;
  telemetry::Counter* abandoned_ctr_ = nullptr;
  telemetry::LatencyHistogram* duration_hist_ = nullptr;
  telemetry::Gauge* last_seq_gauge_ = nullptr;
};

}  // namespace bgpbh::recovery
