#include "recovery/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "storage/format.h"
#include "storage/record_codec.h"
#include "util/crc32.h"
#include "util/log.h"

namespace bgpbh::recovery {

namespace fs = std::filesystem;

namespace {

// Decoder caps so a corrupted count field can never trigger a giant
// allocation (same discipline as storage::kMaxRecordPayload).
constexpr std::uint32_t kMaxShards = 1u << 16;
constexpr std::uint32_t kMaxProducers = 1u << 16;

constexpr std::uint8_t kFlagIncludesTableDump = 1u << 0;
constexpr std::uint8_t kKnownFlags = kFlagIncludesTableDump;

void encode_open_state(const core::OpenEventState& s, net::BufWriter& out) {
  storage::encode_ip(s.peer.peer_ip, out);
  out.u32(s.peer.peer_asn);
  storage::encode_prefix(s.prefix, out);
  out.u64(static_cast<std::uint64_t>(s.start));
  out.u8(static_cast<std::uint8_t>(s.platform));
  out.u8(s.from_table_dump ? 1 : 0);
  out.u16(static_cast<std::uint16_t>(s.detections.size()));
  for (const core::OpenDetection& d : s.detections) {
    out.u8(d.provider.is_ixp ? 1 : 0);
    out.u32(d.provider.asn);
    out.u32(d.provider.ixp_id);
    out.u32(d.user);
    out.u8(static_cast<std::uint8_t>(d.kind));
    out.u32(static_cast<std::uint32_t>(d.as_distance));
  }
  out.u16(static_cast<std::uint16_t>(s.communities.classic().size()));
  for (const auto& c : s.communities.classic()) out.u32(c.raw());
  out.u16(static_cast<std::uint16_t>(s.communities.large().size()));
  for (const auto& l : s.communities.large()) {
    out.u32(l.global_admin());
    out.u32(l.local1());
    out.u32(l.local2());
  }
}

std::optional<core::OpenEventState> decode_open_state(net::BufReader& in) {
  core::OpenEventState s;
  auto peer_ip = storage::decode_ip(in);
  if (!peer_ip) return std::nullopt;
  s.peer.peer_ip = *peer_ip;
  s.peer.peer_asn = in.u32();
  auto prefix = storage::decode_prefix(in);
  if (!prefix) return std::nullopt;
  s.prefix = *prefix;
  s.start = static_cast<util::SimTime>(in.u64());
  std::uint8_t platform = in.u8();
  if (platform >= routing::kNumPlatforms) return std::nullopt;
  s.platform = static_cast<routing::Platform>(platform);
  std::uint8_t from_dump = in.u8();
  if (from_dump > 1) return std::nullopt;
  s.from_table_dump = from_dump != 0;
  std::uint16_t n_det = in.u16();
  if (std::size_t{n_det} * 18 > in.remaining()) return std::nullopt;
  s.detections.reserve(n_det);
  for (std::uint16_t i = 0; i < n_det; ++i) {
    core::OpenDetection d;
    std::uint8_t is_ixp = in.u8();
    if (is_ixp > 1) return std::nullopt;
    d.provider.is_ixp = is_ixp != 0;
    d.provider.asn = in.u32();
    d.provider.ixp_id = in.u32();
    d.user = in.u32();
    std::uint8_t kind = in.u8();
    if (kind > static_cast<std::uint8_t>(core::DetectionKind::kIxpPeerIp)) {
      return std::nullopt;
    }
    d.kind = static_cast<core::DetectionKind>(kind);
    d.as_distance = static_cast<std::int32_t>(in.u32());
    s.detections.push_back(d);
  }
  std::uint16_t n_classic = in.u16();
  if (std::size_t{n_classic} * 4 > in.remaining()) return std::nullopt;
  for (std::uint16_t i = 0; i < n_classic; ++i) {
    s.communities.add(bgp::Community(in.u32()));
  }
  std::uint16_t n_large = in.u16();
  if (std::size_t{n_large} * 12 > in.remaining()) return std::nullopt;
  for (std::uint16_t i = 0; i < n_large; ++i) {
    std::uint32_t global = in.u32(), l1 = in.u32(), l2 = in.u32();
    s.communities.add(bgp::LargeCommunity(global, l1, l2));
  }
  if (!in.ok()) return std::nullopt;
  return s;
}

void encode_prefix_event(const core::PrefixEvent& e, net::BufWriter& out) {
  storage::encode_prefix(e.prefix, out);
  out.u64(static_cast<std::uint64_t>(e.start));
  out.u64(static_cast<std::uint64_t>(e.end));
  out.u32(static_cast<std::uint32_t>(e.providers.size()));
  for (const core::ProviderRef& p : e.providers) {
    out.u8(p.is_ixp ? 1 : 0);
    out.u32(p.asn);
    out.u32(p.ixp_id);
  }
  out.u32(static_cast<std::uint32_t>(e.users.size()));
  for (core::Asn u : e.users) out.u32(u);
  out.u64(static_cast<std::uint64_t>(e.num_peer_events));
  out.u8(e.includes_table_dump_start ? 1 : 0);
}

std::optional<core::PrefixEvent> decode_prefix_event(net::BufReader& in) {
  core::PrefixEvent e;
  auto prefix = storage::decode_prefix(in);
  if (!prefix) return std::nullopt;
  e.prefix = *prefix;
  e.start = static_cast<util::SimTime>(in.u64());
  e.end = static_cast<util::SimTime>(in.u64());
  std::uint32_t n_providers = in.u32();
  if (std::size_t{n_providers} * 9 > in.remaining()) return std::nullopt;
  for (std::uint32_t i = 0; i < n_providers; ++i) {
    core::ProviderRef p;
    std::uint8_t is_ixp = in.u8();
    if (is_ixp > 1) return std::nullopt;
    p.is_ixp = is_ixp != 0;
    p.asn = in.u32();
    p.ixp_id = in.u32();
    e.providers.insert(p);
  }
  std::uint32_t n_users = in.u32();
  if (std::size_t{n_users} * 4 > in.remaining()) return std::nullopt;
  for (std::uint32_t i = 0; i < n_users; ++i) e.users.insert(in.u32());
  e.num_peer_events = static_cast<std::size_t>(in.u64());
  std::uint8_t dump_start = in.u8();
  if (dump_start > 1) return std::nullopt;
  e.includes_table_dump_start = dump_start != 0;
  if (!in.ok()) return std::nullopt;
  return e;
}

bool decode_prefix_events(net::BufReader& in,
                          std::vector<core::PrefixEvent>& out) {
  std::uint32_t count = in.u32();
  // Smallest possible entry: v4 prefix(6) + times(16) + counts(8) +
  // num_peer_events(8) + flag(1).
  if (std::size_t{count} * 39 > in.remaining()) return false;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto e = decode_prefix_event(in);
    if (!e) return false;
    out.push_back(std::move(*e));
  }
  return true;
}

bool sync_dir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

// Durable whole-file write: tmp + fsync + rename + dir fsync.  A crash
// at any point leaves either the old file or the new one, never a torn
// mix visible under the final name.
bool write_file_atomic(const fs::path& final_path,
                       std::span<const std::uint8_t> bytes) {
  fs::path tmp = final_path;
  tmp += ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  std::error_code ec;
  if (!ok) {
    fs::remove(tmp, ec);
    return false;
  }
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return sync_dir(final_path.parent_path().string());
}

std::optional<std::vector<std::uint8_t>> read_file(const fs::path& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return std::nullopt;
  }
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  bool ok = bytes.empty() ||
            std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) return std::nullopt;
  return bytes;
}

// All checkpoint files in `dir`, newest first.
std::vector<std::pair<std::uint64_t, fs::path>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, fs::path>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t seq = parse_checkpoint_seq(entry.path().filename().string());
    if (seq != 0) out.emplace_back(seq, entry.path());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

void prune_checkpoints(const std::string& dir, std::size_t keep) {
  auto files = list_checkpoints(dir);
  std::error_code ec;
  for (std::size_t i = keep; i < files.size(); ++i) {
    fs::remove(files[i].second, ec);
  }
  // Leftover tmp files from a crashed writer are garbage by definition
  // (the rename never happened).
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
  }
}

}  // namespace

void encode_checkpoint_payload(const Checkpoint& cp, net::BufWriter& out) {
  out.u64(cp.seq);
  out.u32(cp.num_shards);
  out.u32(cp.num_producers);
  std::uint8_t flags = 0;
  if (cp.includes_table_dump) flags |= kFlagIncludesTableDump;
  out.u8(flags);
  out.u64(cp.position.seq);
  out.u64(cp.position.records);
  for (const ShardCheckpoint& shard : cp.shards) {
    for (std::uint64_t w : shard.watermarks) out.u64(w);
    out.u32(static_cast<std::uint32_t>(shard.open_state.size()));
    for (const core::OpenEventState& s : shard.open_state) {
      encode_open_state(s, out);
    }
  }
  for (const auto* layer : {&cp.correlated, &cp.grouped}) {
    out.u32(static_cast<std::uint32_t>(layer->size()));
    for (const core::PrefixEvent& e : *layer) encode_prefix_event(e, out);
  }
}

std::optional<Checkpoint> decode_checkpoint_payload(net::BufReader& in) {
  Checkpoint cp;
  cp.seq = in.u64();
  cp.num_shards = in.u32();
  cp.num_producers = in.u32();
  if (!in.ok() || cp.num_shards == 0 || cp.num_shards > kMaxShards ||
      cp.num_producers == 0 || cp.num_producers > kMaxProducers) {
    return std::nullopt;
  }
  std::uint8_t flags = in.u8();
  if ((flags & ~kKnownFlags) != 0) return std::nullopt;
  cp.includes_table_dump = (flags & kFlagIncludesTableDump) != 0;
  cp.position.seq = in.u64();
  cp.position.records = in.u64();
  if (std::size_t{cp.num_shards} * (std::size_t{cp.num_producers} * 8 + 4) >
      in.remaining()) {
    return std::nullopt;
  }
  cp.shards.resize(cp.num_shards);
  for (ShardCheckpoint& shard : cp.shards) {
    shard.watermarks.reserve(cp.num_producers);
    for (std::uint32_t p = 0; p < cp.num_producers; ++p) {
      shard.watermarks.push_back(in.u64());
    }
    std::uint32_t n_open = in.u32();
    // Smallest open state: v4 peer(5) + asn(4) + prefix(6) + start(8) +
    // platform(1) + flag(1) + three empty counts(6).
    if (std::size_t{n_open} * 31 > in.remaining()) return std::nullopt;
    shard.open_state.reserve(n_open);
    for (std::uint32_t i = 0; i < n_open; ++i) {
      auto s = decode_open_state(in);
      if (!s) return std::nullopt;
      shard.open_state.push_back(std::move(*s));
    }
  }
  if (!decode_prefix_events(in, cp.correlated)) return std::nullopt;
  if (!decode_prefix_events(in, cp.grouped)) return std::nullopt;
  if (!in.ok()) return std::nullopt;
  return cp;
}

std::vector<std::uint8_t> encode_checkpoint_file(const Checkpoint& cp) {
  net::BufWriter payload;
  encode_checkpoint_payload(cp, payload);
  net::BufWriter out;
  out.u32(kCheckpointMagic);
  out.u8(kCheckpointVersion);
  out.bytes(payload.data());
  out.u32(static_cast<std::uint32_t>(payload.size()));
  out.u32(util::crc32(payload.data()));
  out.u32(kCheckpointMagic);
  return out.take();
}

std::optional<Checkpoint> decode_checkpoint_file(
    std::span<const std::uint8_t> file) {
  if (file.size() < kCheckpointHeaderBytes + kCheckpointTrailerBytes) {
    return std::nullopt;
  }
  net::BufReader head(file);
  if (head.u32() != kCheckpointMagic || head.u8() != kCheckpointVersion) {
    return std::nullopt;
  }
  net::BufReader tail(file.subspan(file.size() - kCheckpointTrailerBytes));
  std::uint32_t payload_len = tail.u32();
  std::uint32_t payload_crc = tail.u32();
  if (tail.u32() != kCheckpointMagic) return std::nullopt;
  if (payload_len !=
      file.size() - kCheckpointHeaderBytes - kCheckpointTrailerBytes) {
    return std::nullopt;
  }
  auto payload = file.subspan(kCheckpointHeaderBytes, payload_len);
  if (util::crc32(payload) != payload_crc) return std::nullopt;
  net::BufReader in(payload);
  auto cp = decode_checkpoint_payload(in);
  // Trailing payload bytes mean the length field and the payload
  // disagree — a framing bug, not a valid checkpoint.
  if (!cp || !in.ok() || !in.at_end()) return std::nullopt;
  return cp;
}

std::vector<std::uint64_t> producer_totals(const Checkpoint& cp) {
  std::vector<std::uint64_t> totals(cp.num_producers, 0);
  for (const auto& shard : cp.shards) {
    for (std::size_t p = 0; p < totals.size() && p < shard.watermarks.size();
         ++p) {
      totals[p] += shard.watermarks[p];
    }
  }
  return totals;
}

std::string checkpoint_file_name(std::uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%06llu.ckpt",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::uint64_t parse_checkpoint_seq(const std::string& file_name) {
  constexpr std::string_view kPrefix = "checkpoint-";
  constexpr std::string_view kSuffix = ".ckpt";
  if (file_name.size() <= kPrefix.size() + kSuffix.size()) return 0;
  if (file_name.compare(0, kPrefix.size(), kPrefix) != 0) return 0;
  if (file_name.compare(file_name.size() - kSuffix.size(), kSuffix.size(),
                        kSuffix) != 0) {
    return 0;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = kPrefix.size(); i < file_name.size() - kSuffix.size();
       ++i) {
    char c = file_name[i];
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

bool write_checkpoint(const std::string& dir, const Checkpoint& cp,
                      std::size_t keep) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  auto bytes = encode_checkpoint_file(cp);
  if (!write_file_atomic(fs::path(dir) / checkpoint_file_name(cp.seq),
                         bytes)) {
    return false;
  }
  prune_checkpoints(dir, keep == 0 ? 1 : keep);
  return true;
}

std::optional<LoadResult> load_latest_checkpoint(const std::string& dir) {
  LoadResult result;
  for (const auto& [seq, path] : list_checkpoints(dir)) {
    auto bytes = read_file(path);
    if (bytes) {
      auto cp = decode_checkpoint_file(*bytes);
      if (cp) {
        result.checkpoint = std::move(*cp);
        return result;
      }
    }
    ++result.skipped_corrupt;
    util::Log(util::LogLevel::kWarn, "recovery")
        .msg("skipping invalid checkpoint file")
        .kv("file", path.filename().string());
  }
  return std::nullopt;
}

bool truncate_log(const std::string& dir, storage::DurablePos pos) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return pos.records == 0;
  bool saw_boundary_segment = false;
  std::vector<fs::path> to_delete;
  fs::path boundary;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t seq =
        storage::parse_segment_seq(entry.path().filename().string());
    if (seq == 0) continue;
    if (seq > pos.seq) {
      to_delete.push_back(entry.path());
    } else if (seq == pos.seq) {
      saw_boundary_segment = true;
      boundary = entry.path();
    }
  }
  for (const fs::path& path : to_delete) fs::remove(path, ec);
  if (!saw_boundary_segment) {
    if (!to_delete.empty()) sync_dir(dir);
    // The active segment is created lazily, so its absence is only
    // consistent with a position that claims no records in it.
    return pos.records == 0;
  }
  if (pos.records == 0) {
    fs::remove(boundary, ec);
    sync_dir(dir);
    return !ec;
  }
  auto bytes = read_file(boundary);
  if (!bytes || !storage::check_segment_header(*bytes)) return false;
  net::BufReader in(
      std::span<const std::uint8_t>(*bytes).subspan(
          storage::kSegmentHeaderBytes));
  std::uint64_t kept = 0;
  std::size_t end_off = 0;
  while (kept < pos.records) {
    auto event = storage::decode_record(in);
    if (!event) break;
    ++kept;
    end_off = in.pos();
  }
  // Fewer valid records on disk than the checkpoint's durable position
  // claims: the fsynced prefix itself is gone, which replay cannot
  // paper over.  Fail loudly instead of silently dropping closed events.
  if (kept < pos.records) return false;
  const std::size_t keep_bytes = storage::kSegmentHeaderBytes + end_off;
  if (keep_bytes == bytes->size()) {
    if (!to_delete.empty()) sync_dir(dir);
    return true;  // already exactly the durable prefix (unsealed)
  }
  // Rewrite footer-less: SegmentWriter::open's torn-segment recovery
  // rescans and reseals on the next open.
  return write_file_atomic(
      boundary, std::span<const std::uint8_t>(*bytes).first(keep_bytes));
}

}  // namespace bgpbh::recovery
