#include "workload/scenario.h"

#include <algorithm>
#include <cmath>

namespace bgpbh::workload {

BlackholeAnnouncement Episode::announcement(util::SimTime at) const {
  BlackholeAnnouncement ann;
  ann.user = user;
  ann.prefix = prefix;
  ann.target_providers = providers;
  ann.target_ixps = ixps;
  ann.bundle = bundle;
  ann.misconfig = misconfig;
  ann.time = at;
  return ann;
}

WorkloadGenerator::WorkloadGenerator(const topology::AsGraph& graph,
                                     const topology::CustomerCones& cones,
                                     const WorkloadConfig& config)
    : graph_(graph),
      cones_(cones),
      config_(config),
      timeline_(config.intensity_scale),
      rng_(config.seed) {
  // Build the eligible-user pool: every AS with at least one blackholing
  // provider upstream or a blackholing IXP membership.
  for (const auto& node : graph.nodes()) {
    UserProfile profile;
    profile.asn = node.asn;
    profile.type = node.type;
    for (Asn provider : node.providers) {
      const topology::AsNode* p = graph.find(provider);
      if (p && p->blackhole.offers_blackholing) {
        profile.available_providers.push_back(provider);
      }
    }
    for (std::uint32_t ixp_id : node.ixps) {
      const topology::Ixp* ixp = graph.find_ixp(ixp_id);
      if (ixp && ixp->offers_blackholing) {
        profile.available_ixps.push_back(ixp_id);
      }
    }
    if (profile.available_providers.empty() && profile.available_ixps.empty())
      continue;
    // Content providers (small hosters/clouds) are the most active user
    // group: 18% of users but 43% of blackholed prefixes (§8).
    switch (node.type) {
      case topology::NetworkType::kContent: profile.activity_weight = 6.0; break;
      case topology::NetworkType::kTransitAccess:
        profile.activity_weight = node.tier == topology::Tier::kStub ? 1.6 : 0.8;
        break;
      case topology::NetworkType::kEnterprise: profile.activity_weight = 0.9; break;
      case topology::NetworkType::kEduResearchNfP: profile.activity_weight = 0.5; break;
      default: profile.activity_weight = 0.7; break;
    }
    users_.push_back(std::move(profile));
  }
  user_weights_.reserve(users_.size());
  for (const auto& u : users_) user_weights_.push_back(u.activity_weight);
}

net::Prefix WorkloadGenerator::pick_victim_prefix(const UserProfile& user,
                                                  util::Rng& rng) {
  const topology::AsNode* node = graph_.find(user.asn);
  // IPv6 victims are rare (<1% of blackholed prefixes).
  if (!node->originated_v6.empty() && rng.bernoulli(config_.ipv6_probability)) {
    const net::Prefix& block = node->originated_v6.front();
    net::Ipv6Addr::Bytes b = block.addr().v6().bytes();
    b[14] = static_cast<std::uint8_t>(rng.uniform(255) + 1);
    b[15] = static_cast<std::uint8_t>(rng.uniform(255) + 1);
    return net::Prefix(net::Ipv6Addr(b), 128);
  }
  const net::Prefix& block =
      node->originated_v4[rng.uniform(node->originated_v4.size())];
  std::uint32_t base = block.addr().v4().value();
  std::uint32_t span = 1u << (32 - block.len());
  std::uint32_t host = base + static_cast<std::uint32_t>(rng.uniform(span));
  if (rng.bernoulli(config_.host_route_probability)) {
    return net::Prefix(net::Ipv4Addr(host), 32);  // host route
  }
  // Sometimes operators blackhole a wider subnet (/24..../29).
  std::uint8_t len = static_cast<std::uint8_t>(24 + rng.uniform(6));
  return net::Prefix(net::Ipv4Addr(host), len);
}

util::SimTime WorkloadGenerator::sample_episode_duration(util::Rng& rng) {
  // Three regimes (Fig 8b): short-lived (minutes..hours), long-lived
  // (days..weeks), very long-lived (months; misconfigurations and
  // reputation-based permanent blocks).
  double u = rng.uniform01();
  if (u < 0.48) {  // minutes
    return 2 * util::kMinute +
           static_cast<util::SimTime>(rng.exponential(12 * util::kMinute));
  }
  if (u < 0.74) {  // hours
    return 30 * util::kMinute +
           static_cast<util::SimTime>(rng.exponential(9.0 * util::kHour));
  }
  if (u < 0.94) {  // days
    return util::kDay +
           static_cast<util::SimTime>(rng.exponential(4.0 * util::kDay));
  }
  if (u < 0.987) {  // weeks
    return util::kWeek +
           static_cast<util::SimTime>(rng.exponential(2.0 * util::kWeek));
  }
  // months
  return 30 * util::kDay +
         static_cast<util::SimTime>(rng.exponential(60.0 * util::kDay));
}

void WorkloadGenerator::materialize_on_periods(Episode& episode, util::Rng& rng) {
  // ON/OFF probing at the episode start: short blackhole intervals with
  // sub-5-minute withdrawals in between, then a final ON period that
  // holds until the attack subsides.
  util::SimTime cursor = episode.start;
  auto off_gap = [&rng]() {
    // Longer than the cross-peer correlation tolerance, shorter than
    // the 5-minute grouping timeout.
    return std::min<util::SimTime>(
        75 + static_cast<util::SimTime>(rng.exponential(60.0)),
        4 * util::kMinute);
  };
  std::size_t toggles =
      2 + static_cast<std::size_t>(rng.uniform(config_.max_toggles_per_episode));
  for (std::size_t i = 0; i + 1 < toggles && cursor < episode.end; ++i) {
    // Short probe intervals: most ungrouped events last <= 1 minute
    // (Fig 8a).
    util::SimTime on = 5 + static_cast<util::SimTime>(rng.exponential(20.0));
    OnPeriod p;
    p.start = cursor;
    p.end = std::min(cursor + on, episode.end);
    p.explicit_withdrawal = rng.bernoulli(0.7);
    episode.on_periods.push_back(p);
    cursor = p.end + off_gap();
  }
  // The remainder of the episode stays mostly ON, with periodic
  // re-probes (operators cannot know when the attack ends, §9).  We
  // materialize a bounded number of segments.
  std::size_t segments = 0;
  while (cursor < episode.end && segments < 12) {
    OnPeriod p;
    p.start = cursor;
    util::SimTime seg = 10 * util::kMinute +
                        static_cast<util::SimTime>(rng.exponential(
                            static_cast<double>(90 * util::kMinute)));
    bool last = segments == 11 || cursor + seg >= episode.end;
    p.end = last ? episode.end : cursor + seg;
    p.explicit_withdrawal = rng.bernoulli(0.75);
    episode.on_periods.push_back(p);
    cursor = p.end + off_gap();
    ++segments;
  }
  if (episode.on_periods.empty()) {
    OnPeriod p{episode.start, episode.end, true};
    episode.on_periods.push_back(p);
  }
}

Episode WorkloadGenerator::make_episode(const UserProfile& user,
                                        util::SimTime start, util::Rng& rng) {
  Episode episode;
  episode.user = user.asn;
  episode.prefix = pick_victim_prefix(user, rng);
  episode.start = start;
  episode.end = start + sample_episode_duration(rng);

  // Provider selection.  During a serious attack the victim network
  // blackholes at every upstream it can (otherwise uncovered ingress
  // paths keep delivering the flood, §10); smaller incidents — or
  // operators probing the attack's entry point — use a single provider.
  // Single-homed users are "full coverage" with one provider, which
  // keeps the multi-provider share of events near the paper's 28%
  // (Fig 7b).
  if (rng.bernoulli(config_.full_coverage_probability)) {
    episode.providers = user.available_providers;
    for (std::uint32_t ixp : user.available_ixps) {
      if (rng.bernoulli(0.55)) episode.ixps.push_back(ixp);
    }
    if (episode.providers.empty() && episode.ixps.empty() &&
        !user.available_ixps.empty()) {
      episode.ixps.push_back(user.available_ixps.front());
    }
    // Cap at the paper's observed maximum of 20 providers per event.
    while (episode.providers.size() + episode.ixps.size() > 20) {
      if (!episode.ixps.empty()) episode.ixps.pop_back();
      else episode.providers.pop_back();
    }
  } else {
    std::size_t options =
        user.available_providers.size() + user.available_ixps.size();
    std::size_t pick = static_cast<std::size_t>(rng.uniform(options));
    if (pick < user.available_providers.size()) {
      episode.providers.push_back(user.available_providers[pick]);
    } else {
      episode.ixps.push_back(
          user.available_ixps[pick - user.available_providers.size()]);
    }
  }
  episode.bundle = rng.bernoulli(config_.bundle_probability);

  if (rng.bernoulli(config_.misconfig_probability)) {
    double u = rng.uniform01();
    episode.misconfig =
        u < 0.34 ? BlackholeAnnouncement::Misconfig::kInvalidNextHop
                 : (u < 0.67 ? BlackholeAnnouncement::Misconfig::kWrongCommunity
                             : BlackholeAnnouncement::Misconfig::kMissingIrrEntry);
  }
  materialize_on_periods(episode, rng);
  return episode;
}

std::vector<Episode> WorkloadGenerator::episodes_for_day(std::int64_t day) {
  std::vector<Episode> out;
  util::Rng rng = rng_.fork(static_cast<std::uint64_t>(day));

  // Attacks hit a victim *network*, which then blackholes one or more
  // of its addresses — so daily blackholed-prefix counts run well above
  // daily user counts (paper: up to 5K prefixes vs 400 users per day).
  double expected_prefixes = timeline_.new_episodes(day);
  constexpr double kMeanPrefixesPerAttack = 2.6;
  double expected_attacks = expected_prefixes / kMeanPrefixesPerAttack;
  std::size_t attacks = static_cast<std::size_t>(expected_attacks);
  if (rng.bernoulli(expected_attacks - std::floor(expected_attacks))) ++attacks;

  // Garbage-collect the busy map.
  util::SimTime day_start = day * util::kDay;
  std::erase_if(busy_until_, [day_start](const auto& kv) {
    return kv.second < day_start;
  });

  for (std::size_t a = 0; a < attacks; ++a) {
    const UserProfile& user = users_[rng.weighted(user_weights_)];
    util::SimTime start = day_start + static_cast<util::SimTime>(
                                          rng.uniform(util::kDay));
    // Number of victim addresses in this attack (mean ~2.6, heavy tail).
    double u = rng.uniform01();
    std::size_t victims = u < 0.45   ? 1
                          : u < 0.70 ? 2
                          : u < 0.85 ? 3
                          : u < 0.95 ? 4 + rng.uniform(3)
                                     : 7 + rng.uniform(6);
    for (std::size_t v = 0; v < victims; ++v) {
      util::SimTime jitter = static_cast<util::SimTime>(rng.uniform(120));
      Episode episode = make_episode(user, start + jitter, rng);
      auto busy = busy_until_.find(episode.prefix);
      if (busy != busy_until_.end() && busy->second >= episode.start) {
        continue;  // prefix already under mitigation; keep ground-truth
                   // intervals disjoint per prefix
      }
      busy_until_[episode.prefix] = episode.end + 10 * util::kMinute;
      out.push_back(std::move(episode));
    }
  }

  // The accidental mass-blackholing spike (A): an academic network
  // blackholes its entire table for under two minutes (§6).
  if (const Spike* spike = timeline_.misconfig_spike_on(day)) {
    const UserProfile* academic = nullptr;
    for (const auto& u : users_) {
      if (u.type == topology::NetworkType::kEduResearchNfP &&
          !u.available_providers.empty()) {
        academic = &u;
        break;
      }
    }
    if (academic) {
      const topology::AsNode* node = graph_.find(academic->asn);
      util::SimTime start = day_start + 11 * util::kHour;
      for (const auto& block : node->originated_v4) {
        // Every /24 slice of the block gets blackholed for < 2 minutes.
        std::uint32_t base = block.addr().v4().value();
        std::size_t slices = block.len() >= 24
                                 ? 1
                                 : std::min<std::size_t>(
                                       1u << (24 - block.len()), 24);
        for (std::size_t s = 0; s < slices; ++s) {
          Episode e;
          e.user = academic->asn;
          e.prefix = net::Prefix(
              net::Ipv4Addr(base + (static_cast<std::uint32_t>(s) << 8)), 24);
          e.providers = academic->available_providers;
          e.bundle = true;
          e.start = start;
          e.end = start + 110;  // < 2 minutes
          e.on_periods.push_back(OnPeriod{e.start, e.end, true});
          out.push_back(std::move(e));
        }
      }
      (void)spike;
    }
  }
  return out;
}

std::vector<BlackholeAnnouncement> WorkloadGenerator::background_for_day(
    std::int64_t day) {
  // Regular (non-blackhole) announcements; volume scaled like episodes.
  std::vector<BlackholeAnnouncement> out;
  util::Rng rng = rng_.fork(0xBAC0000ULL + static_cast<std::uint64_t>(day));
  std::size_t n = static_cast<std::size_t>(120.0 * config_.intensity_scale * 10.0);
  util::SimTime day_start = day * util::kDay;
  const auto& nodes = graph_.nodes();
  for (std::size_t k = 0; k < n; ++k) {
    const auto& node = nodes[rng.uniform(nodes.size())];
    if (node.originated_v4.empty()) continue;
    BlackholeAnnouncement ann;  // reused as a generic announcement carrier
    ann.user = node.asn;
    ann.prefix = node.originated_v4[rng.uniform(node.originated_v4.size())];
    ann.time = day_start + static_cast<util::SimTime>(rng.uniform(util::kDay));
    // Service communities: the announcing AS's own and/or its provider's.
    if (!node.service_communities.empty()) {
      ann.extra_communities.push_back(
          node.service_communities[rng.uniform(node.service_communities.size())]);
    }
    if (!node.providers.empty()) {
      const topology::AsNode* p = graph_.find(node.providers[0]);
      if (p && !p->service_communities.empty() && rng.bernoulli(0.5)) {
        ann.extra_communities.push_back(p->service_communities.front());
      }
    }
    out.push_back(std::move(ann));
  }
  return out;
}

}  // namespace bgpbh::workload
