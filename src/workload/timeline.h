// Longitudinal activity model: December 2014 .. March 2017 (§6).
//
// Encodes the adoption growth the paper measures (blackholed prefixes
// per day grow ~6x, users ~4x, providers ~2.5x) and the documented
// DDoS-correlated spikes:
//   A 2016-04-18  accidental: academic network blackholes its own table
//   B 2016-05-16  NS1 DNS-provider amplification attack
//   C 2016-07-15  Turkish coup attempt, news-site DDoS
//   D 2016-08-22  Rio Olympics, 540 Gbps
//   E 2016-09-20  "Krebs on Security" (Mirai), days long
//   F 2016-10-31  Liberia infrastructure (Mirai)
// plus a months-long Mirai-era elevation from September 2016.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace bgpbh::workload {

struct Spike {
  char label = 'A';
  util::SimTime date = 0;
  double multiplier = 1.0;   // extra episode volume that day
  int extra_days = 0;        // spike decay tail
  bool misconfiguration = false;  // spike A
  std::string description;
};

class TimelineModel {
 public:
  // intensity_scale scales the paper's absolute daily volumes down to
  // simulation size (1.0 = paper scale).
  explicit TimelineModel(double intensity_scale);

  // Expected number of *new* blackholing episodes starting on the given
  // day (before integer sampling).
  double new_episodes(std::int64_t day) const;

  // Daily multiplier from spikes / the Mirai-era elevation.
  double spike_multiplier(std::int64_t day) const;

  // The misconfiguration spike (A) fires on this day?
  const Spike* misconfig_spike_on(std::int64_t day) const;

  const std::vector<Spike>& spikes() const { return spikes_; }
  double intensity_scale() const { return scale_; }

  // Annotations for Fig 4 plots.
  std::vector<std::pair<std::int64_t, char>> annotations() const;

 private:
  double scale_;
  std::vector<Spike> spikes_;
};

}  // namespace bgpbh::workload
