// Blackholing episode generator: who blackholes what, where, for how
// long, and with which operator quirks (§6-§9 ground truth).
//
// An *episode* models one mitigation: a user network reacting to an
// attack on one of its addresses.  Within an episode the operator
// follows the paper-documented best practice of ON/OFF probing
// (blackhole, watch traffic drop, withdraw to test whether the attack
// ended, repeat) — which produces the very short ungrouped events of
// Fig 8a — before leaving the blackhole up for the episode remainder.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "routing/propagation.h"
#include "topology/as_graph.h"
#include "topology/cone.h"
#include "workload/timeline.h"

namespace bgpbh::workload {

using bgp::Asn;
using routing::BlackholeAnnouncement;

struct OnPeriod {
  util::SimTime start = 0;
  util::SimTime end = 0;
  // True when the operator ends this period with an explicit WITHDRAW;
  // otherwise the prefix is re-announced without blackhole communities
  // (implicit withdrawal, §4.2).
  bool explicit_withdrawal = true;
};

struct Episode {
  Asn user = 0;
  net::Prefix prefix;
  std::vector<Asn> providers;        // blackholing-provider targets
  std::vector<std::uint32_t> ixps;   // IXP targets
  bool bundle = false;
  BlackholeAnnouncement::Misconfig misconfig =
      BlackholeAnnouncement::Misconfig::kNone;
  util::SimTime start = 0;
  util::SimTime end = 0;
  std::vector<OnPeriod> on_periods;  // materialized blackhole intervals

  BlackholeAnnouncement announcement(util::SimTime at) const;
};

struct WorkloadConfig {
  std::uint64_t seed = 99;
  // Scales the paper's daily volumes; 1.0 reproduces absolute numbers
  // (hundreds of millions of updates), the default keeps the study
  // laptop-sized while preserving every ratio.
  double intensity_scale = 0.05;
  std::size_t max_toggles_per_episode = 8;
  double bundle_probability = 0.50;
  // Probability that a user blackholes at ALL of its blackholing-capable
  // upstreams (vs probing a single one).  With the topology's
  // multihoming mix this lands the multi-provider event share near the
  // paper's 28% (Fig 7b).
  double full_coverage_probability = 0.45;
  double misconfig_probability = 0.015;
  double ipv6_probability = 0.004;     // <1% of blackholings are IPv6
  double host_route_probability = 0.975;  // 98% of prefixes are /32
};

// Per-user blackholing capability derived from the topology.
struct UserProfile {
  Asn asn = 0;
  topology::NetworkType type = topology::NetworkType::kUnknown;
  std::vector<Asn> available_providers;      // upstream blackholing providers
  std::vector<std::uint32_t> available_ixps; // blackholing IXPs joined
  double activity_weight = 1.0;  // content providers are the most active
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const topology::AsGraph& graph,
                    const topology::CustomerCones& cones,
                    const WorkloadConfig& config);

  // All episodes *starting* on the given day, ready to be propagated.
  std::vector<Episode> episodes_for_day(std::int64_t day);

  // Background (non-blackhole) announcements for the day: regular
  // routing updates carrying service communities.  These exercise the
  // Fig 2 usage statistics and the engine's false-positive controls.
  std::vector<BlackholeAnnouncement> background_for_day(std::int64_t day);

  const std::vector<UserProfile>& eligible_users() const { return users_; }
  const TimelineModel& timeline() const { return timeline_; }
  const WorkloadConfig& config() const { return config_; }

 private:
  Episode make_episode(const UserProfile& user, util::SimTime start,
                       util::Rng& rng);
  net::Prefix pick_victim_prefix(const UserProfile& user, util::Rng& rng);
  util::SimTime sample_episode_duration(util::Rng& rng);
  void materialize_on_periods(Episode& episode, util::Rng& rng);

  const topology::AsGraph& graph_;
  const topology::CustomerCones& cones_;
  WorkloadConfig config_;
  TimelineModel timeline_;
  std::vector<UserProfile> users_;
  std::vector<double> user_weights_;
  // Prefixes busy in an ongoing episode: avoids overlapping ground truth.
  std::map<net::Prefix, util::SimTime> busy_until_;
  util::Rng rng_;
};

}  // namespace bgpbh::workload
