#include "workload/timeline.h"

#include <algorithm>
#include <cmath>

namespace bgpbh::workload {

using util::from_date;

TimelineModel::TimelineModel(double intensity_scale) : scale_(intensity_scale) {
  spikes_ = {
      {'A', from_date(2016, 4, 18), 8.0, 0, true,
       "accidental blackholing of an academic network's routing table"},
      {'B', from_date(2016, 5, 16), 3.0, 1, false, "NS1 DNS amplification DDoS"},
      {'C', from_date(2016, 7, 15), 2.6, 1, false, "Turkish coup news-site DDoS"},
      {'D', from_date(2016, 8, 22), 3.2, 2, false, "Rio Olympics 540 Gbps DDoS"},
      {'E', from_date(2016, 9, 20), 3.8, 4, false, "KrebsOnSecurity Mirai DDoS"},
      {'F', from_date(2016, 10, 31), 3.4, 2, false, "Liberia Mirai DDoS"},
  };
}

double TimelineModel::new_episodes(std::int64_t day) const {
  // Linear adoption growth from ~80 new episodes/day (Dec 2014) to ~400
  // (Mar 2017), matching the 6x growth in daily blackholed prefixes
  // when combined with episode-duration carry-over.
  std::int64_t d0 = util::day_index(util::study_start());
  std::int64_t d1 = util::day_index(util::study_end());
  double t = std::clamp(static_cast<double>(day - d0) / static_cast<double>(d1 - d0),
                        0.0, 1.2);
  double base = 80.0 + (400.0 - 80.0) * t;
  return base * scale_ * spike_multiplier(day);
}

double TimelineModel::spike_multiplier(std::int64_t day) const {
  double mult = 1.0;
  for (const auto& spike : spikes_) {
    if (spike.misconfiguration) continue;  // handled separately
    std::int64_t sd = util::day_index(spike.date);
    if (day == sd) {
      mult = std::max(mult, spike.multiplier);
    } else if (day > sd && day <= sd + spike.extra_days) {
      double decay = spike.multiplier *
                     std::pow(0.5, static_cast<double>(day - sd));
      mult = std::max(mult, 1.0 + decay);
    }
  }
  // Mirai-era elevation: September 2016 onward, tapering after January.
  std::int64_t mirai_start = util::day_index(from_date(2016, 9, 1));
  std::int64_t mirai_peak_end = util::day_index(from_date(2017, 1, 15));
  if (day >= mirai_start && day <= mirai_peak_end) {
    mult *= 1.30;
  } else if (day > mirai_peak_end) {
    mult *= 1.15;
  }
  return mult;
}

const Spike* TimelineModel::misconfig_spike_on(std::int64_t day) const {
  for (const auto& spike : spikes_) {
    if (spike.misconfiguration && util::day_index(spike.date) == day) return &spike;
  }
  return nullptr;
}

std::vector<std::pair<std::int64_t, char>> TimelineModel::annotations() const {
  std::vector<std::pair<std::int64_t, char>> out;
  for (const auto& spike : spikes_) {
    out.emplace_back(util::day_index(spike.date), spike.label);
  }
  return out;
}

}  // namespace bgpbh::workload
