// A single DDoS mitigation walkthrough: a hosting provider's customer
// comes under attack; the host blackholes the victim /32 at its transit
// providers; we watch the event on the control plane (what collectors
// see, streamed through an AnalysisSession with a subscribed sink) and
// on the data plane (traceroutes during vs after, Fig 9 style).
#include <cstdio>

#include "api/session.h"
#include "dataplane/efficacy.h"

using namespace bgpbh;

namespace {

// Prints each inferred peer-granularity event as it closes.
class InferenceLog : public api::EventSink {
 public:
  void on_event_closed(const core::PeerEvent& e) override {
    ++events_;
    if (events_ == 13) std::printf("  ...\n");
    if (events_ >= 13) return;
    std::printf("  [%s] %s blackholed at %s (user AS%u, %s, AS distance %d)\n",
                routing::to_string(e.platform).c_str(),
                e.prefix.to_string().c_str(), e.provider.to_string().c_str(),
                e.user, core::to_string(e.kind).c_str(), e.as_distance);
  }
  std::size_t events() const { return events_; }

 private:
  std::size_t events_ = 0;
};

}  // namespace

int main() {
  // 1. Substrates come from the session — one construction path for
  //    every consumer of the library.
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveFeed;
  config.study.table_dump_episodes = 0;
  config.num_shards = 2;
  api::AnalysisSession session(config);
  const topology::AsGraph& graph = session.graph();
  const topology::CustomerCones& cones = session.cones();
  routing::PropagationEngine& propagation = session.propagation();

  // 2. Pick a content provider whose upstreams offer blackholing.
  const topology::AsNode* victim_host = nullptr;
  std::vector<bgp::Asn> bh_providers;
  for (const auto& node : graph.nodes()) {
    if (node.type != topology::NetworkType::kContent) continue;
    bh_providers.clear();
    for (bgp::Asn p : node.providers) {
      const topology::AsNode* pn = graph.find(p);
      if (pn && pn->blackhole.offers_blackholing &&
          pn->blackhole.auth == topology::BlackholeAuth::kCustomerCone) {
        bh_providers.push_back(p);
      }
    }
    if (bh_providers.size() == node.providers.size() && !bh_providers.empty()) {
      victim_host = &node;
      break;
    }
  }
  if (!victim_host) {
    std::printf("no suitable victim found\n");
    return 1;
  }
  net::Prefix victim(
      net::Ipv4Addr(victim_host->v4_block.addr().v4().value() + 0x2A2A), 32);
  std::printf("victim: %s hosted by AS%u (%s)\n", victim.to_string().c_str(),
              victim_host->asn, victim_host->country.c_str());
  for (bgp::Asn p : bh_providers) {
    const topology::AsNode* pn = graph.find(p);
    std::printf("  upstream AS%u offers blackholing via community %s\n", p,
                pn->blackhole.communities.front().to_string().c_str());
  }

  // 3. The attack hits at 02:14 UTC; the host triggers RTBH at every
  //    upstream, bundling the communities (Fig 3 style).
  routing::BlackholeAnnouncement ann;
  ann.user = victim_host->asn;
  ann.prefix = victim;
  ann.target_providers = bh_providers;
  ann.bundle = true;
  ann.time = util::from_datetime(2017, 3, 15, 2, 14, 0);
  auto prop = propagation.propagate_blackhole(ann);
  std::printf("\nannouncement propagated: %zu providers installed null routes, "
              "%zu ASes hold the route\n",
              prop.activated_providers.size(), prop.holders.size());

  // 4. Control plane: stream the collector observations through the
  //    live session; the sink logs what the engine shards conclude.
  InferenceLog log;
  session.subscribe(log);

  auto updates = session.fleet().observe_announcement(prop, ann, propagation);
  for (const auto& u : updates) session.push(u);
  std::printf("collector sightings: %zu updates\n", updates.size());

  auto withdrawal_time = ann.time + 47 * util::kMinute;
  auto withdrawals = session.fleet().observe_withdrawal(
      prop, ann, propagation, withdrawal_time, true);
  std::printf("\ninferred events:\n");
  for (const auto& u : withdrawals) session.push(u);
  session.close(withdrawal_time + util::kHour);
  std::printf("  %zu peer events inferred, %zu §9 groups\n", log.events(),
              session.grouped_events().size());

  // 5. Data plane: traceroute during vs after from a random probe.
  dataplane::ForwardingSim forwarding(graph, propagation, 7);
  dataplane::TracerouteEngine traceroute(forwarding);
  dataplane::ActiveBlackholes active;
  active.install_from(prop, victim, propagation);

  bgp::Asn probe_asn = 0;
  for (const auto& node : graph.nodes()) {
    if (node.tier == topology::Tier::kStub && node.asn != victim_host->asn &&
        !cones.in_cone(victim_host->asn, node.asn)) {
      probe_asn = node.asn;
      break;
    }
  }
  auto during = traceroute.trace(probe_asn, victim.addr(), active);
  dataplane::ActiveBlackholes none;
  auto after = traceroute.trace(probe_asn, victim.addr(), none);

  std::printf("\ntraceroute from AS%u during the blackholing (%zu hops%s):\n",
              probe_asn, during.ip_path_length(),
              during.dropped_at
                  ? (" — dropped in AS" + std::to_string(*during.dropped_at)).c_str()
                  : "");
  for (const auto& hop : during.hops) {
    std::printf("  %-16s AS%-6u %s\n",
                hop.responds ? hop.ip.to_string().c_str() : "*", hop.asn,
                hop.responds ? "" : "(no reply)");
  }
  std::printf("traceroute after withdrawal: %zu hops, destination %s\n",
              after.ip_path_length(),
              after.reached_destination ? "reached" : "unreachable");
  std::printf("\nblackholing saved %zd IP hops of attack traffic transport.\n",
              static_cast<ssize_t>(after.ip_path_length()) -
                  static_cast<ssize_t>(during.ip_path_length()));
  return 0;
}
