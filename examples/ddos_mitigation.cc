// A single DDoS mitigation walkthrough: a hosting provider's customer
// comes under attack; the host blackholes the victim /32 at its transit
// providers; we watch the event on the control plane (what collectors
// and the inference engine see) and on the data plane (traceroutes
// during vs after, Fig 9 style).
#include <cstdio>

#include "core/engine.h"
#include "dataplane/efficacy.h"
#include "dictionary/dictionary.h"
#include "topology/generator.h"

using namespace bgpbh;

int main() {
  // 1. Substrate.
  auto graph = topology::generate(topology::GeneratorConfig{});
  topology::CustomerCones cones(graph);
  auto registry = topology::Registry::build(graph, 0.72, 0.95, 42);
  auto corpus = dictionary::generate_corpus(graph, 42);
  auto dict = dictionary::build_documented_dictionary(corpus, registry);
  routing::PropagationEngine propagation(graph, cones, 99);
  auto fleet = routing::CollectorFleet::build(graph, routing::FleetConfig{});

  // 2. Pick a content provider whose upstreams offer blackholing.
  const topology::AsNode* victim_host = nullptr;
  std::vector<bgp::Asn> bh_providers;
  for (const auto& node : graph.nodes()) {
    if (node.type != topology::NetworkType::kContent) continue;
    bh_providers.clear();
    for (bgp::Asn p : node.providers) {
      const topology::AsNode* pn = graph.find(p);
      if (pn && pn->blackhole.offers_blackholing &&
          pn->blackhole.auth == topology::BlackholeAuth::kCustomerCone) {
        bh_providers.push_back(p);
      }
    }
    if (bh_providers.size() == node.providers.size() && !bh_providers.empty()) {
      victim_host = &node;
      break;
    }
  }
  if (!victim_host) {
    std::printf("no suitable victim found\n");
    return 1;
  }
  net::Prefix victim(
      net::Ipv4Addr(victim_host->v4_block.addr().v4().value() + 0x2A2A), 32);
  std::printf("victim: %s hosted by AS%u (%s)\n", victim.to_string().c_str(),
              victim_host->asn, victim_host->country.c_str());
  for (bgp::Asn p : bh_providers) {
    const topology::AsNode* pn = graph.find(p);
    std::printf("  upstream AS%u offers blackholing via community %s\n", p,
                pn->blackhole.communities.front().to_string().c_str());
  }

  // 3. The attack hits at 02:14 UTC; the host triggers RTBH at every
  //    upstream, bundling the communities (Fig 3 style).
  routing::BlackholeAnnouncement ann;
  ann.user = victim_host->asn;
  ann.prefix = victim;
  ann.target_providers = bh_providers;
  ann.bundle = true;
  ann.time = util::from_datetime(2017, 3, 15, 2, 14, 0);
  auto prop = propagation.propagate_blackhole(ann);
  std::printf("\nannouncement propagated: %zu providers installed null routes, "
              "%zu ASes hold the route\n",
              prop.activated_providers.size(), prop.holders.size());

  // 4. Control plane: what do the collectors record, and what does the
  //    inference engine conclude?
  core::InferenceEngine engine(dict, registry);
  auto updates = fleet.observe_announcement(prop, ann, propagation);
  for (const auto& u : updates) engine.process(u.platform, u.update);
  std::printf("collector sightings: %zu updates\n", updates.size());

  auto withdrawal_time = ann.time + 47 * util::kMinute;
  auto withdrawals =
      fleet.observe_withdrawal(prop, ann, propagation, withdrawal_time, true);
  for (const auto& u : withdrawals) engine.process(u.platform, u.update);
  engine.finish(withdrawal_time + util::kHour);

  std::printf("\ninferred events:\n");
  for (const auto& e : engine.events()) {
    std::printf("  [%s] %s blackholed at %s (user AS%u, %s, AS distance %d)\n",
                routing::to_string(e.platform).c_str(),
                e.prefix.to_string().c_str(), e.provider.to_string().c_str(),
                e.user, core::to_string(e.kind).c_str(), e.as_distance);
    if (engine.events().size() > 12 && &e == &engine.events()[11]) {
      std::printf("  ... (%zu more)\n", engine.events().size() - 12);
      break;
    }
  }

  // 5. Data plane: traceroute during vs after from a random probe.
  dataplane::ForwardingSim forwarding(graph, propagation, 7);
  dataplane::TracerouteEngine traceroute(forwarding);
  dataplane::ActiveBlackholes active;
  active.install_from(prop, victim, propagation);

  bgp::Asn probe_asn = 0;
  for (const auto& node : graph.nodes()) {
    if (node.tier == topology::Tier::kStub && node.asn != victim_host->asn &&
        !cones.in_cone(victim_host->asn, node.asn)) {
      probe_asn = node.asn;
      break;
    }
  }
  auto during = traceroute.trace(probe_asn, victim.addr(), active);
  dataplane::ActiveBlackholes none;
  auto after = traceroute.trace(probe_asn, victim.addr(), none);

  std::printf("\ntraceroute from AS%u during the blackholing (%zu hops%s):\n",
              probe_asn, during.ip_path_length(),
              during.dropped_at
                  ? (" — dropped in AS" + std::to_string(*during.dropped_at)).c_str()
                  : "");
  for (const auto& hop : during.hops) {
    std::printf("  %-16s AS%-6u %s\n",
                hop.responds ? hop.ip.to_string().c_str() : "*", hop.asn,
                hop.responds ? "" : "(no reply)");
  }
  std::printf("traceroute after withdrawal: %zu hops, destination %s\n",
              after.ip_path_length(),
              after.reached_destination ? "reached" : "unreachable");
  std::printf("\nblackholing saved %zd IP hops of attack traffic transport.\n",
              static_cast<ssize_t>(after.ip_path_length()) -
                  static_cast<ssize_t>(during.ip_path_length()));
  return 0;
}
