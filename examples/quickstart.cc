// Quickstart: run the full blackholing-inference pipeline over one
// simulated week through the public AnalysisSession API and print what
// it finds.
//
//   $ ./example_quickstart
//
// Pipeline: synthetic Internet topology -> blackhole-community
// dictionary (scraped from the synthetic IRR/web corpus) -> DDoS-driven
// blackholing workload -> collector feeds -> inference engine -> §9
// groups, all behind one bgpbh::api::AnalysisSession.
#include <cstdio>

#include "api/session.h"

using namespace bgpbh;

int main() {
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kBatch;
  config.study.window_start = util::from_date(2017, 3, 1);
  config.study.window_end = util::from_date(2017, 3, 8);
  config.study.workload.intensity_scale = 0.05;

  std::printf("building substrates...\n");
  api::AnalysisSession session(config);
  std::printf("  topology:   %zu ASes, %zu IXPs\n", session.graph().num_ases(),
              session.graph().num_ixps());
  std::printf("  dictionary: %zu communities for %zu ISPs + %zu IXPs\n",
              session.dictionary().num_communities(),
              session.dictionary().num_providers(),
              session.dictionary().num_ixps());
  std::printf("  collectors: %zu BGP sessions across RIS/RV/PCH/CDN\n\n",
              session.fleet().sessions().size());

  std::printf("replaying one week of BGP updates through the engine...\n");
  session.run();

  const auto stats = session.stats();
  std::printf("  %llu updates processed, %llu blackholing events opened\n\n",
              static_cast<unsigned long long>(stats.updates_processed),
              static_cast<unsigned long long>(stats.events_opened));

  std::printf("first ten inferred blackholing events:\n");
  std::size_t shown = 0;
  for (const auto& event : session.prefix_events()) {
    if (event.includes_table_dump_start) continue;
    if (shown++ >= 10) break;
    std::string providers;
    for (const auto& p : event.providers) {
      if (!providers.empty()) providers += ", ";
      providers += p.to_string();
    }
    std::string users;
    for (auto u : event.users) {
      if (!users.empty()) users += ", ";
      users += "AS" + std::to_string(u);
    }
    std::printf("  %s  %-20s blackholed at %-18s by %-10s for %s\n",
                util::format_datetime(event.start).c_str(),
                event.prefix.to_string().c_str(), providers.c_str(),
                users.c_str(), util::format_duration(event.duration()).c_str());
  }

  // Composable queries: the same builder serves batch and live runs.
  util::SimTime day1_end = config.study.window_start + util::kDay;
  std::printf("\nqueries:\n");
  std::printf("  events overlapping day 1:            %zu\n",
              session.count(api::EventQuery().between(config.study.window_start,
                                                      day1_end)));
  std::printf("  of them, ended by explicit withdraw: %zu\n",
              session.count(api::EventQuery()
                                .between(config.study.window_start, day1_end)
                                .where([](const core::PeerEvent& e) {
                                  return e.explicit_withdrawal;
                                })));
  auto snap = session.snapshot();
  std::printf("  busiest provider overall:            ");
  const core::ProviderRef* top = nullptr;
  std::size_t top_n = 0;
  for (const auto& [provider, n] : snap.per_provider) {
    if (n > top_n) {
      top = &provider;
      top_n = n;
    }
  }
  if (top) {
    std::printf("%s (%zu peer events)\n", top->to_string().c_str(), top_n);
  } else {
    std::printf("none\n");
  }

  std::printf("\ntotals: %zu peer events, %zu prefix events, %zu grouped periods\n",
              session.events().size(), session.prefix_events().size(),
              session.grouped_events().size());
  return 0;
}
