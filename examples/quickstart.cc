// Quickstart: run the full blackholing-inference pipeline over one
// simulated week and print what it finds.
//
//   $ ./quickstart
//
// Pipeline: synthetic Internet topology -> blackhole-community
// dictionary (scraped from the synthetic IRR/web corpus) -> DDoS-driven
// blackholing workload -> collector feeds -> inference engine.
#include <cstdio>

#include "core/study.h"

using namespace bgpbh;

int main() {
  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 8);
  config.workload.intensity_scale = 0.05;

  std::printf("building substrates...\n");
  core::Study study(config);
  std::printf("  topology:   %zu ASes, %zu IXPs\n", study.graph().num_ases(),
              study.graph().num_ixps());
  std::printf("  dictionary: %zu communities for %zu ISPs + %zu IXPs\n",
              study.dictionary().num_communities(),
              study.dictionary().num_providers(), study.dictionary().num_ixps());
  std::printf("  collectors: %zu BGP sessions across RIS/RV/PCH/CDN\n\n",
              study.fleet().sessions().size());

  std::printf("replaying one week of BGP updates through the engine...\n");
  study.run();

  const auto& stats = study.engine_stats();
  std::printf("  %llu updates processed, %llu blackholing events opened\n\n",
              static_cast<unsigned long long>(stats.updates_processed),
              static_cast<unsigned long long>(stats.events_opened));

  std::printf("first ten inferred blackholing events:\n");
  std::size_t shown = 0;
  for (const auto& event : study.prefix_events()) {
    if (event.includes_table_dump_start) continue;
    if (shown++ >= 10) break;
    std::string providers;
    for (const auto& p : event.providers) {
      if (!providers.empty()) providers += ", ";
      providers += p.to_string();
    }
    std::string users;
    for (auto u : event.users) {
      if (!users.empty()) users += ", ";
      users += "AS" + std::to_string(u);
    }
    std::printf("  %s  %-20s blackholed at %-18s by %-10s for %s\n",
                util::format_datetime(event.start).c_str(),
                event.prefix.to_string().c_str(), providers.c_str(),
                users.c_str(), util::format_duration(event.duration()).c_str());
  }

  std::printf("\ntotals: %zu peer events, %zu prefix events, %zu grouped periods\n",
              study.events().size(), study.prefix_events().size(),
              study.grouped_events().size());
  return 0;
}
