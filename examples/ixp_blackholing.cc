// IXP route-server blackholing end to end: a member announces a victim
// /32 with the RFC 7999 BLACKHOLE community to the route server, the RS
// redistributes it with the next hop rewritten to the blackholing IP,
// members that honour it drop the traffic — and we account the week of
// fabric traffic the mitigation removed (Fig 9c style).  Topology and
// propagation substrates come from an AnalysisSession.
#include <cstdio>

#include "api/session.h"
#include "flows/ixp_traffic.h"

using namespace bgpbh;

int main() {
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kBatch;
  api::AnalysisSession session(config);
  const topology::AsGraph& graph = session.graph();
  routing::PropagationEngine& propagation = session.propagation();

  // The largest blackholing IXP (DE-CIX scale in our model).
  const topology::Ixp* ixp = nullptr;
  for (const auto& candidate : graph.ixps()) {
    if (!candidate.offers_blackholing) continue;
    if (!ixp || candidate.members.size() > ixp->members.size()) ixp = &candidate;
  }
  std::printf("IXP: %s in %s — %zu members\n", ixp->name.c_str(),
              ixp->country.c_str(), ixp->members.size());
  std::printf("  route server:      AS%u (%s)\n", ixp->route_server_asn,
              ixp->transparent_route_server ? "transparent" : "in AS path");
  std::printf("  peering LAN:       %s\n", ixp->peering_lan.to_string().c_str());
  std::printf("  blackhole next-hop: %s / %s\n",
              ixp->blackhole_ip_v4.to_string().c_str(),
              ixp->blackhole_ip_v6.to_string().c_str());
  std::printf("  blackhole community: %s (RFC 7999)\n\n",
              ixp->blackhole_community.to_string().c_str());

  // A member under attack blackholes the victim at the route server.
  bgp::Asn member = ixp->members[ixp->members.size() / 3];
  const topology::AsNode* mnode = graph.find(member);
  workload::Episode episode;
  episode.user = member;
  episode.prefix = net::Prefix(
      net::Ipv4Addr(mnode->v4_block.addr().v4().value() + 0x0616), 32);
  episode.ixps = {ixp->id};
  episode.start = util::from_date(2017, 3, 20);
  episode.end = episode.start + util::kWeek;
  episode.on_periods.push_back(
      workload::OnPeriod{episode.start, episode.end, true});

  auto prop = propagation.propagate_blackhole(episode.announcement(episode.start));
  std::size_t honouring = 0;
  for (const auto& [ixp_id, m] : prop.rs_receivers) {
    if (propagation.honours_rs_blackhole(ixp_id, m)) ++honouring;
  }
  std::printf("member AS%u blackholes %s at the route server\n", member,
              episode.prefix.to_string().c_str());
  std::printf("  RS redistributed to %zu member sessions; %zu honour the "
              "null route\n\n",
              prop.rs_receivers.size(), honouring);

  // One week of fabric traffic toward the victim.
  flows::IxpTrafficSim sim(graph, propagation, flows::IxpTrafficConfig{});
  auto report = sim.simulate(ixp->id, {episode}, episode.start, 7);
  const auto& split = report.per_prefix.at(episode.prefix);
  std::printf("%s", split.forwarded.ascii_plot("traffic still forwarded "
                                               "(bytes/day)", {}, 60, 6).c_str());
  std::printf("%s\n", split.blackholed.ascii_plot("traffic dropped at the IXP "
                                                  "(bytes/day)", {}, 60, 6).c_str());
  std::printf("drop share: %.0f%% — residual traffic comes from %zu members "
              "(top-10 cause %.0f%% of it)\n",
              report.drop_fraction() * 100, report.residual_member_count(),
              report.residual_share_of_top(10) * 100);

  // Export the sampled flows as IPFIX, as the IXP's fabric would.
  flows::IpfixExporter exporter(ixp->id);
  auto messages = exporter.export_batches(sim.sampled_flows(), episode.start);
  std::size_t bytes = 0;
  for (const auto& m : messages) bytes += m.size();
  std::printf("\nIPFIX export: %zu sampled flow records (1:%llu sampling) in "
              "%zu messages, %zu bytes\n",
              sim.sampled_flows().size(),
              static_cast<unsigned long long>(
                  flows::IxpTrafficConfig{}.sampling_rate),
              messages.size(), bytes);
  return 0;
}
