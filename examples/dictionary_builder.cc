// Build the blackhole-communities dictionary the way §4.1 does: scrape
// IRR objects and operator web pages, extract community meanings by
// keyword lemmas, keep only validated blackhole communities — then show
// what the dictionary knows.  The corpus, registry, and dictionary all
// come from one AnalysisSession: the same substrates every other
// consumer of the library sees.
#include <cstdio>

#include "api/session.h"
#include "dictionary/extract.h"

using namespace bgpbh;

int main() {
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kBatch;
  api::AnalysisSession session(config);
  const dictionary::Corpus& corpus = session.corpus();

  std::printf("corpus: %zu documents (%zu via private communication)\n\n",
              corpus.documents.size(), corpus.private_communications.size());

  // Show one IRR object with a blackhole community.
  for (const auto& doc : corpus.documents) {
    if (doc.kind != dictionary::Document::Kind::kIrr) continue;
    auto extracted = dictionary::extract_from_document(doc);
    bool has_blackhole = false;
    for (const auto& e : extracted) has_blackhole |= e.is_blackhole;
    if (!has_blackhole) continue;
    std::printf("--- sample IRR object (RADb style) ---------------------\n");
    std::printf("%s", doc.text.c_str());
    std::printf("--------------------------------------------------------\n\n");
    break;
  }

  const dictionary::BlackholeDictionary& dict = session.dictionary();
  std::printf("dictionary: %zu communities, %zu ISP providers, %zu IXPs\n\n",
              dict.num_communities(), dict.num_providers(), dict.num_ixps());

  // The RFC 7999 entry is shared by nearly all blackholing IXPs.
  if (const auto* rfc = dict.lookup(bgp::Community::rfc7999_blackhole())) {
    std::printf("65535:666 (RFC 7999 BLACKHOLE): used by %zu IXPs — %s\n",
                rfc->ixp_ids.size(),
                rfc->ambiguous() ? "ambiguous, needs path/peer-ip evidence"
                                 : "unambiguous");
  }
  // A shared non-ASN community.
  if (const auto* shared = dict.lookup(bgp::Community(0, 666))) {
    std::printf("0:666: shared by %zu ISPs — requires a candidate on the AS "
                "path (§4.2)\n",
                shared->provider_asns.size());
  }

  // Per-type breakdown (Table 2 shape).
  std::printf("\nproviders per network type (classified via PeeringDB/CAIDA):\n");
  for (auto& [type, row] : dict.breakdown(session.registry())) {
    std::printf("  %-16s %3zu networks, %3zu communities\n",
                topology::to_string(type).c_str(), row.networks,
                row.communities);
  }

  // Community value conventions.
  std::map<std::uint16_t, std::size_t> values;
  for (const auto& [community, entry] : dict.entries()) {
    if (!entry.provider_asns.empty()) values[community.value()] += 1;
  }
  std::printf("\nmost common community values:\n");
  std::vector<std::pair<std::size_t, std::uint16_t>> ranked;
  for (auto& [value, n] : values) ranked.emplace_back(n, value);
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
    std::printf("  ASN:%-5u used by %zu providers\n", ranked[i].second,
                ranked[i].first);
  }

  // Scoped (regional) communities.
  std::size_t scoped = 0;
  for (const auto& [community, entry] : dict.entries()) {
    if (!entry.scope.empty()) ++scoped;
  }
  std::printf("\nregion-scoped blackhole communities: %zu (e.g. blackhole in "
              "Europe only)\n",
              scoped);
  return 0;
}
