// Continuous monitoring mode over an MRT archive: the study writes a
// day of collector updates to an MRT file (BGP4MP_MESSAGE_AS4 records,
// the format RIS/RouteViews archives use), then a separate monitoring
// pass replays the file through the sharded streaming pipeline
// (src/stream/): MrtFileSource -> shard router -> engine shards ->
// event store.  The event-store snapshot drives a live alert log —
// the §4.2 "continuous monitoring" loop as a production pipeline.
#include <algorithm>
#include <cstdio>

#include "bgp/mrt.h"
#include "core/study.h"
#include "stream/pipeline.h"
#include "stream/source.h"

using namespace bgpbh;

int main() {
  // 1. Produce one day of updates and serialize them to MRT.
  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 15);
  config.window_end = util::from_date(2017, 3, 16);
  config.workload.intensity_scale = 0.05;
  config.table_dump_episodes = 0;
  core::Study study(config);

  net::BufWriter archive;
  std::size_t written = 0;
  for (const auto& fu : study.replay_updates()) {
    bgp::mrt::encode_update(fu.update, archive);
    ++written;
  }
  std::string path = "/tmp/bgpbh_live_monitor.mrt";
  bgp::mrt::write_file(path, archive.data());
  std::printf("wrote %zu MRT records (%zu bytes) to %s\n\n", written,
              archive.size(), path.c_str());

  // 2. Monitoring pass: replay the archive through the sharded
  //    streaming pipeline as if it were a live feed.
  auto source = stream::MrtFileSource::open(path, routing::Platform::kRis);
  if (!source) {
    std::printf("failed to read/parse archive\n");
    return 1;
  }

  stream::PipelineConfig pconfig;
  pconfig.num_shards = 4;
  stream::StreamPipeline pipeline(study.dictionary(), study.registry(),
                                  pconfig);
  std::uint64_t replayed = pipeline.run(*source);
  pipeline.finish(config.window_end);

  // 3. Alert log from the merged, time-ordered event store.
  const auto& events = pipeline.store().events();
  std::size_t shown = 0;
  for (const auto& e : events) {
    if (shown >= 15) break;
    std::printf("%s  BLACKHOLE %-20s at %-12s user AS%-6u %s (%s)\n",
                util::format_datetime(e.end).c_str(),
                e.prefix.to_string().c_str(), e.provider.to_string().c_str(),
                e.user, e.explicit_withdrawal ? "withdrawn" : "re-announced",
                util::format_duration(e.duration()).c_str());
    ++shown;
  }
  if (events.size() > shown) std::printf("...\n");

  auto snap = pipeline.store().snapshot();
  std::printf("\nmonitoring summary: %llu updates replayed across %zu shards, "
              "%zu events closed, %zu still open at end of archive\n",
              static_cast<unsigned long long>(replayed),
              pipeline.num_shards(),
              snap.total_events - pipeline.open_at_finish(),
              pipeline.open_at_finish());
  std::printf("busiest providers:\n");
  std::vector<std::pair<std::size_t, core::ProviderRef>> top;
  for (const auto& [provider, n] : snap.per_provider) {
    top.emplace_back(n, provider);
  }
  std::sort(top.rbegin(), top.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i) {
    std::printf("  %-12s %zu events\n", top[i].second.to_string().c_str(),
                top[i].first);
  }
  std::remove(path.c_str());
  return 0;
}
