// Continuous monitoring mode over an MRT archive: the study writes a
// day of collector updates to an MRT file (BGP4MP_MESSAGE_AS4 records,
// the format RIS/RouteViews archives use), then a separate monitoring
// pass reads the file back and streams it through the inference engine,
// printing a live event log — the §4.2 "continuous monitoring" loop.
#include <cstdio>

#include "bgp/mrt.h"
#include "core/study.h"

using namespace bgpbh;

int main() {
  // 1. Produce one day of updates and serialize them to MRT.
  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 15);
  config.window_end = util::from_date(2017, 3, 16);
  config.workload.intensity_scale = 0.05;
  config.table_dump_episodes = 0;
  core::Study study(config);

  net::BufWriter archive;
  std::size_t written = 0;
  {
    // Re-run the workload against the fleet, capturing raw updates.
    auto& propagation = study.propagation();
    workload::WorkloadGenerator workload(study.graph(), study.cones(),
                                         config.workload);
    std::int64_t day = util::day_index(config.window_start);
    for (const auto& episode : workload.episodes_for_day(day)) {
      auto ann = episode.announcement(episode.start);
      auto prop = propagation.propagate_blackhole(ann);
      for (const auto& period : episode.on_periods) {
        if (period.start >= config.window_end) break;
        ann.time = period.start;
        for (const auto& fu :
             study.fleet().observe_announcement(prop, ann, propagation)) {
          bgp::mrt::encode_update(fu.update, archive);
          ++written;
        }
        for (const auto& fu : study.fleet().observe_withdrawal(
                 prop, ann, propagation,
                 std::min(period.end, config.window_end - 20),
                 period.explicit_withdrawal)) {
          bgp::mrt::encode_update(fu.update, archive);
          ++written;
        }
      }
    }
  }
  std::string path = "/tmp/bgpbh_live_monitor.mrt";
  bgp::mrt::write_file(path, archive.data());
  std::printf("wrote %zu MRT records (%zu bytes) to %s\n\n", written,
              archive.size(), path.c_str());

  // 2. Monitoring pass: read the archive and stream it through the
  //    engine as if it were live.
  auto bytes = bgp::mrt::read_file(path);
  if (!bytes) {
    std::printf("failed to read archive\n");
    return 1;
  }
  auto updates = bgp::mrt::decode_updates(*bytes);
  if (!updates) {
    std::printf("malformed archive\n");
    return 1;
  }
  std::sort(updates->begin(), updates->end(),
            [](const bgp::ObservedUpdate& a, const bgp::ObservedUpdate& b) {
              return a.time < b.time;
            });

  core::InferenceEngine engine(study.dictionary(), study.registry());
  std::size_t logged = 0;
  std::size_t before = 0;
  for (const auto& update : *updates) {
    // Platform attribution is irrelevant for the event log.
    engine.process(routing::Platform::kRis, update);
    for (std::size_t i = before; i < engine.events().size(); ++i) {
      const auto& e = engine.events()[i];
      if (logged < 15) {
        std::printf("%s  BLACKHOLE %-20s at %-12s user AS%-6u %s (%s)\n",
                    util::format_datetime(e.end).c_str(),
                    e.prefix.to_string().c_str(), e.provider.to_string().c_str(),
                    e.user, e.explicit_withdrawal ? "withdrawn" : "re-announced",
                    util::format_duration(e.duration()).c_str());
      }
      ++logged;
    }
    before = engine.events().size();
  }
  engine.finish(config.window_end);
  std::printf("%s", logged > 15 ? "...\n" : "");
  std::printf("\nmonitoring summary: %llu updates replayed, %zu events closed, "
              "%zu still active at end of archive\n",
              static_cast<unsigned long long>(engine.stats().updates_processed),
              engine.events().size() - (engine.events().size() - before),
              engine.open_event_count());
  std::remove(path.c_str());
  return 0;
}
