// Continuous monitoring mode over an MRT archive, driven entirely
// through the public AnalysisSession API: the session's study
// substrates write a day of collector updates to an MRT file
// (BGP4MP_MESSAGE_AS4 records, the format RIS/RouteViews archives
// use), then a live-feed session replays the file through the sharded
// streaming pipeline while a subscribed EventSink turns closed events
// and incremental §9 group updates into an alert log — the §4.2
// "continuous monitoring" loop as a production pipeline.
//
// The live alert lines interleave in shard-drain order, so they vary
// run to run (as in any live sharded monitor); the SET of events and
// alerts, and everything from "monitoring summary" down, is
// deterministic — the §9 groups are arrival-order independent.
//
// Persistence (src/storage/):
//   live_monitor --persist <dir>            spill closed events to an
//                                           append-only segment log
//                                           (fresh start: clears <dir>)
//   live_monitor --persist <dir> --resume   keep the directory's prior
//                                           sessions and merge them
//                                           into every query (the
//                                           restart-survival loop)
// After the run, the monitor reopens the directory in kReopen mode and
// verifies the archive serves the identical event set — exiting
// non-zero otherwise, so the examples-smoke CI job gates on it.
//
// Output discipline: alert lines (the product) go to stdout via
// printf; operational status goes through util::Log — structured
// key=value lines on stderr, BGPBH_LOG-leveled — so the two streams
// separate cleanly.  Telemetry (src/telemetry/):
//   live_monitor --metrics-out <file>    write the session registry as
//                                        Prometheus text after close
//   live_monitor --metrics-every <N>     while ingesting, log a
//                                        metrics digest every N updates
//
// Supervision (src/recovery/):
//   live_monitor --persist <dir> --checkpoint-every <N>
//                                        cut a crash-consistent
//                                        checkpoint every N updates
//   SIGTERM / SIGINT                     graceful shutdown: stop the
//                                        replay loop, flush, cut a
//                                        final checkpoint, close — the
//                                        reopen self-check below still
//                                        runs, so an interrupted run
//                                        verifies its own durability
//
// Distributed operation (src/fabric/):
//   live_monitor --connect host:port[,host:port...]
//                                        feed the archive to a running
//                                        shard-server fleet instead of
//                                        the in-process pipeline, then
//                                        scatter-gather the events
//                                        back, verify them against an
//                                        in-process replay of the SAME
//                                        archive (exit non-zero on any
//                                        difference), and send the
//                                        fleet a graceful SHUTDOWN.
//                                        The servers must run the
//                                        matching study knobs (the
//                                        shard_server defaults).
//                                        Mutually exclusive with
//                                        --persist/--resume/
//                                        --checkpoint-every.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "api/session.h"
#include "bgp/mrt.h"
#include "telemetry/export.h"
#include "util/log.h"

using namespace bgpbh;

namespace {

// Async-signal-safe shutdown latch: the handler only sets the flag;
// the replay loop polls it and runs the orderly teardown itself.
volatile std::sig_atomic_t g_shutdown = 0;

extern "C" void on_shutdown_signal(int) { g_shutdown = 1; }

// Alert sink: prints the first closed events as they arrive on the
// dispatch thread, and flags §9 groups that keep growing (the paper's
// ON/OFF probing signature).
class AlertSink : public api::EventSink {
 public:
  void on_event_closed(const core::PeerEvent& e) override {
    ++events_;
    if (events_ > 15) return;
    std::printf("%s  BLACKHOLE %-20s at %-12s user AS%-6u %s (%s)\n",
                util::format_datetime(e.end).c_str(),
                e.prefix.to_string().c_str(), e.provider.to_string().c_str(),
                e.user, e.explicit_withdrawal ? "withdrawn" : "re-announced",
                util::format_duration(e.duration()).c_str());
    if (events_ == 15) std::printf("...\n");
  }

  void on_group_updated(const core::PrefixEvent& group) override {
    // Alert once per prefix when a group first shows repeated probing.
    if (group.num_peer_events < 6) return;
    if (!alerted_.insert(group.prefix).second) return;
    std::printf(">>> GROUP ALERT %s: %zu peer events across %zu providers "
                "within %s — repeated ON/OFF blackholing\n",
                group.prefix.to_string().c_str(), group.num_peer_events,
                group.providers.size(),
                util::format_duration(group.duration()).c_str());
  }

  void on_snapshot(const stream::EventStore::Snapshot& snap) override {
    last_total_ = snap.total_events;
  }

  std::size_t events() const { return events_; }
  std::size_t last_snapshot_total() const { return last_total_; }

 private:
  std::size_t events_ = 0;
  std::size_t last_total_ = 0;
  std::set<net::Prefix> alerted_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string persist_dir;
  std::string metrics_out;
  std::string connect_arg;
  std::uint64_t metrics_every = 0;
  std::uint64_t checkpoint_every = 0;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--persist") == 0 && i + 1 < argc) {
      persist_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-every") == 0 && i + 1 < argc) {
      metrics_every = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 &&
               i + 1 < argc) {
      checkpoint_every = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: live_monitor [--persist <dir> [--resume]] "
                   "[--checkpoint-every <N>] [--metrics-out <file>] "
                   "[--metrics-every <N>] "
                   "[--connect host:port[,host:port...]]\n");
      return 2;
    }
  }
  if (checkpoint_every != 0 && persist_dir.empty()) {
    util::Log(util::LogLevel::kError, "live_monitor")
        .msg("--checkpoint-every requires --persist <dir>");
    return 2;
  }
  if (resume && persist_dir.empty()) {
    util::Log(util::LogLevel::kError, "live_monitor")
        .msg("--resume requires --persist <dir>");
    return 2;
  }
  if (!connect_arg.empty() &&
      (!persist_dir.empty() || resume || checkpoint_every != 0)) {
    util::Log(util::LogLevel::kError, "live_monitor")
        .msg("--connect excludes --persist/--resume/--checkpoint-every "
             "(persistence lives on the shard servers)");
    return 2;
  }

  // ---- fabric mode: feed a remote shard-server fleet -----------------
  // The same archive drives two sessions: the fabric client (updates go
  // out as APPEND frames, events come back by scatter-gather) and an
  // in-process monitor, which is ground truth for the self-check.
  if (!connect_arg.empty()) {
    std::vector<fabric::FabricEndpoint> endpoints;
    std::size_t pos = 0;
    while (pos < connect_arg.size()) {
      std::size_t comma = connect_arg.find(',', pos);
      if (comma == std::string::npos) comma = connect_arg.size();
      std::string token = connect_arg.substr(pos, comma - pos);
      std::size_t colon = token.rfind(':');
      int port = colon == std::string::npos
                     ? 0
                     : std::atoi(token.c_str() + colon + 1);
      if (colon == std::string::npos || colon == 0 || port <= 0 ||
          port > 65535) {
        std::fprintf(stderr, "live_monitor: bad --connect endpoint '%s'\n",
                     token.c_str());
        return 2;
      }
      endpoints.push_back(fabric::FabricEndpoint{
          token.substr(0, colon), static_cast<std::uint16_t>(port)});
      pos = comma + 1;
    }

    // Study knobs mirror shard_server's defaults — both sides derive
    // their substrates from them, so they must agree.
    api::SessionConfig config;
    config.mode = api::SessionConfig::Mode::kLiveFeed;
    config.study.window_start = util::from_date(2017, 3, 15);
    config.study.window_end = util::from_date(2017, 3, 16);
    config.study.workload.intensity_scale = 0.05;
    config.study.table_dump_episodes = 0;
    config.num_shards = 4;  // global slot count across the fleet

    api::AnalysisSession local(config);
    net::BufWriter archive;
    std::size_t written = 0;
    for (const auto& fu : local.study().replay_updates()) {
      bgp::mrt::encode_update(fu.update, archive);
      ++written;
    }
    std::string path = "/tmp/bgpbh_live_monitor_fabric.mrt";
    bgp::mrt::write_file(path, archive.data());
    util::Log(util::LogLevel::kInfo, "live_monitor")
        .msg("archive written")
        .kv("records", static_cast<std::uint64_t>(written))
        .kv("path", path)
        .kv("endpoints", connect_arg);

    api::SessionConfig fabric_config = config;
    fabric_config.fabric.endpoints = endpoints;
    api::AnalysisSession session(fabric_config);
    session.start();
    std::string open_error;
    auto source = stream::MrtFileSource::open(path, routing::Platform::kRis,
                                              &open_error);
    if (!source) {
      std::fprintf(stderr, "live_monitor: cannot open %s: %s\n", path.c_str(),
                   open_error.c_str());
      return 1;
    }
    std::uint64_t replayed = 0;
    while (const routing::FeedUpdate* u = source->next()) {
      session.push(*u);
      ++replayed;
    }
    session.close(config.study.window_end);
    std::vector<core::PeerEvent> remote = session.events();

    // Ground truth: the identical archive through the in-process plane.
    local.start();
    auto local_source = stream::MrtFileSource::open(
        path, routing::Platform::kRis, &open_error);
    if (!local_source) {
      std::fprintf(stderr, "live_monitor: cannot reopen %s: %s\n",
                   path.c_str(), open_error.c_str());
      return 1;
    }
    while (const routing::FeedUpdate* u = local_source->next()) {
      local.push(*u);
    }
    local.close(config.study.window_end);
    std::vector<core::PeerEvent> truth = local.events();
    std::remove(path.c_str());

    bool identical = remote == truth;
    std::printf("fabric monitoring summary: %llu updates fed to %zu "
                "server%s, %zu events gathered, %llu reconnects  [%s]\n",
                static_cast<unsigned long long>(replayed), endpoints.size(),
                endpoints.size() == 1 ? "" : "s", remote.size(),
                static_cast<unsigned long long>(session.fabric()->reconnects()),
                identical ? "matches in-process replay" : "MISMATCH");
    if (!identical) {
      util::Log(util::LogLevel::kError, "live_monitor")
          .msg("fabric event set does not match in-process replay")
          .kv("remote_events", static_cast<std::uint64_t>(remote.size()))
          .kv("local_events", static_cast<std::uint64_t>(truth.size()));
      return 1;
    }
    util::Log(util::LogLevel::kInfo, "live_monitor")
        .msg("fabric self-check passed; shutting the fleet down")
        .kv("events", static_cast<std::uint64_t>(remote.size()));
    // --metrics-out in fabric mode means the FLEET view: the local
    // registry holds only client-side fabric.* metrics (the pipeline
    // lives in the shard-server processes), so gather every slot's
    // registry over STATS and dump the folded result.
    if (!metrics_out.empty()) {
      telemetry::FleetTelemetry fleet = session.fabric()->fleet_telemetry();
      std::string prom = telemetry::to_prometheus(fleet.folded);
      std::FILE* f = std::fopen(metrics_out.c_str(), "w");
      if (!f) {
        util::Log(util::LogLevel::kError, "live_monitor")
            .msg("cannot write metrics file")
            .kv("path", metrics_out);
        return 1;
      }
      std::fwrite(prom.data(), 1, prom.size(), f);
      std::fclose(f);
      std::size_t fleet_slots = 0;
      for (const auto& ep : fleet.endpoints) fleet_slots += ep.slots.size();
      util::Log(util::LogLevel::kInfo, "live_monitor")
          .msg("fleet metrics written")
          .kv("path", metrics_out)
          .kv("endpoints", static_cast<std::uint64_t>(fleet.endpoints.size()))
          .kv("slots", static_cast<std::uint64_t>(fleet_slots))
          .kv("bytes", static_cast<std::uint64_t>(prom.size()));
    }
    session.fabric()->shutdown_endpoints();
    return 0;
  }
  // Without --resume this run's live view is the whole truth, so the
  // reopen self-check below compares against it — start from an empty
  // directory or a stale one would (correctly) fail the comparison.
  if (!persist_dir.empty() && !resume) {
    std::filesystem::remove_all(persist_dir);
  }

  // 1. One session is both the archive producer (its study substrates
  //    generate the day of updates) and the live monitor that replays
  //    the archive through the sharded pipeline.
  api::SessionConfig config;
  config.mode = api::SessionConfig::Mode::kLiveFeed;
  config.study.window_start = util::from_date(2017, 3, 15);
  config.study.window_end = util::from_date(2017, 3, 16);
  config.study.workload.intensity_scale = 0.05;
  config.study.table_dump_episodes = 0;
  config.num_shards = 4;
  config.persist_dir = persist_dir;
  config.resume = resume;
  config.checkpoint_every = checkpoint_every;
  api::AnalysisSession session(config);

  // A production monitor dies by signal, not by reaching the end of an
  // archive: install the graceful-shutdown latch before any ingest.
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);

  net::BufWriter archive;
  std::size_t written = 0;
  for (const auto& fu : session.study().replay_updates()) {
    bgp::mrt::encode_update(fu.update, archive);
    ++written;
  }
  std::string path = "/tmp/bgpbh_live_monitor.mrt";
  bgp::mrt::write_file(path, archive.data());
  util::Log(util::LogLevel::kInfo, "live_monitor")
      .msg("archive written")
      .kv("records", static_cast<std::uint64_t>(written))
      .kv("bytes", static_cast<std::uint64_t>(archive.size()))
      .kv("path", path);

  // 2. Monitoring pass: subscribe the alert sink, replay the archive
  //    as if it were a live feed, close at the archive cut-off.  The
  //    manual start/push/flush loop is feed() spelled out, which gives
  //    --metrics-every a place to log a registry digest mid-ingest.
  std::string open_error;
  auto source =
      stream::MrtFileSource::open(path, routing::Platform::kRis, &open_error);
  if (!source) {
    util::Log(util::LogLevel::kError, "live_monitor")
        .msg("failed to read/parse archive")
        .kv("path", path)
        .kv("reason", open_error);
    std::fprintf(stderr, "live_monitor: cannot open %s: %s\n", path.c_str(),
                 open_error.c_str());
    return 1;
  }
  AlertSink alerts;
  session.subscribe(alerts);
  session.start();
  std::uint64_t replayed = 0;
  while (const routing::FeedUpdate* u = source->next()) {
    if (g_shutdown) break;
    session.push(*u);
    ++replayed;
    if (metrics_every != 0 && replayed % metrics_every == 0) {
      auto digest = session.telemetry().snapshot();
      util::Log(util::LogLevel::kInfo, "live_monitor")
          .msg("metrics digest")
          .kv("pushed", digest.value_or("stream.updates_pushed"))
          .kv("queue_depth", digest.value_or("stream.queue.depth"))
          .kv("open_events", digest.value_or("stream.shard.open_events"))
          .kv("dispatch_lag", digest.value_or("api.dispatch.lag_events"));
    }
  }
  session.flush();
  if (g_shutdown) {
    // Orderly teardown on SIGTERM/SIGINT: everything pushed so far is
    // flushed, a final checkpoint pins the open state, and close()
    // seals the segment log — the reopen self-check below then proves
    // the interrupted run lost nothing it accepted.
    bool checkpointed = checkpoint_every != 0 && session.checkpoint_now();
    util::Log(util::LogLevel::kInfo, "live_monitor")
        .msg("shutdown signal received; closing gracefully")
        .kv("replayed", replayed)
        .kv("final_checkpoint", checkpointed);
  }
  session.close(config.study.window_end);
  api::SessionHealth health = session.health();
  util::Log(health.state == api::HealthState::kHealthy
                ? util::LogLevel::kInfo
                : util::LogLevel::kWarn,
            "live_monitor")
      .msg("session health")
      .kv("state", api::to_string(health.state))
      .kv("events_shed", session.events_shed())
      .kv("events_lost", session.events_lost());

  // 3. Summary from the final snapshot (the same counters the sink saw
  //    in its last on_snapshot delivery).
  auto snap = session.snapshot();
  util::Log(util::LogLevel::kInfo, "live_monitor")
      .msg("monitoring summary")
      .kv("replayed", replayed)
      .kv("shards", static_cast<std::uint64_t>(session.num_shards()))
      .kv("closed", static_cast<std::uint64_t>(snap.total_events -
                                               session.open_at_close()))
      .kv("open_at_close", static_cast<std::uint64_t>(session.open_at_close()))
      .kv("sink_events", static_cast<std::uint64_t>(alerts.events()))
      .kv("snapshot_delivered",
          static_cast<std::uint64_t>(alerts.last_snapshot_total()))
      .kv("groups", static_cast<std::uint64_t>(session.grouped_events().size()));
  std::printf("\nmonitoring summary: %llu updates replayed, %zu events closed, "
              "%zu §9 groups\n",
              static_cast<unsigned long long>(replayed),
              snap.total_events - session.open_at_close(),
              session.grouped_events().size());
  std::printf("busiest providers:\n");
  std::vector<std::pair<std::size_t, core::ProviderRef>> top;
  for (const auto& [provider, n] : snap.per_provider) {
    top.emplace_back(n, provider);
  }
  std::sort(top.rbegin(), top.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i) {
    std::printf("  %-12s %zu events\n", top[i].second.to_string().c_str(),
                top[i].first);
  }
  std::remove(path.c_str());

  // 4. Persistence round trip: reopen the segment log and prove the
  //    archive serves the exact event set the live view held (with
  //    --resume that is this run's events PLUS every prior session's).
  if (!persist_dir.empty()) {
    util::Log(util::LogLevel::kInfo, "live_monitor")
        .msg("events persisted")
        .kv("events", session.events_persisted())
        .kv("dir", persist_dir)
        .kv("segments_sealed", session.segments_sealed())
        .kv("bytes", session.persisted_bytes())
        .kv("resume", resume);
    api::SessionConfig reopen_config;
    reopen_config.mode = api::SessionConfig::Mode::kReopen;
    reopen_config.persist_dir = persist_dir;
    api::AnalysisSession reopened(reopen_config);
    auto from_disk = reopened.events();
    auto from_live = session.events();
    bool identical = from_disk == from_live;
    if (!identical) {
      util::Log(util::LogLevel::kError, "live_monitor")
          .msg("reopened archive does not match live view")
          .kv("disk_events", static_cast<std::uint64_t>(from_disk.size()))
          .kv("live_events", static_cast<std::uint64_t>(from_live.size()));
      return 1;
    }
    util::Log(util::LogLevel::kInfo, "live_monitor")
        .msg("reopen self-check passed")
        .kv("events", static_cast<std::uint64_t>(from_disk.size()))
        .kv("segments",
            static_cast<std::uint64_t>(reopened.disk()->num_segments()));
  }

  // 5. Final registry dump for scraping: everything the run recorded —
  //    queue depths, per-shard batch latencies, dispatch lag, spill
  //    counters — in Prometheus text exposition format.
  if (!metrics_out.empty()) {
    std::string prom = telemetry::to_prometheus(session.telemetry().snapshot());
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (!f) {
      util::Log(util::LogLevel::kError, "live_monitor")
          .msg("cannot write metrics file")
          .kv("path", metrics_out);
      return 1;
    }
    std::fwrite(prom.data(), 1, prom.size(), f);
    std::fclose(f);
    util::Log(util::LogLevel::kInfo, "live_monitor")
        .msg("metrics written")
        .kv("path", metrics_out)
        .kv("bytes", static_cast<std::uint64_t>(prom.size()));
  }
  return 0;
}
