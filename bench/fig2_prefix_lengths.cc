// Fig 2: per-community prefix-length usage profiles — blackhole
// communities sit almost exclusively on prefixes more specific than
// /24; other communities on /24-or-shorter — plus the §4.1 extended-
// dictionary inference (111 undocumented communities in 102 ASes).
#include "bench_common.h"

#include "dictionary/inferred.h"

using namespace bgpbh;

int main() {
  bench::header("Fig 2 — community tag vs prefix-length fraction",
                "Giotsas et al., IMC'17, Fig 2 + §4.1 extended dictionary");

  core::Study study(bench::focus_config());
  study.run();

  // Aggregate prefix-length profiles per community class.
  std::map<std::uint8_t, double> bh_mass, other_mass;
  double bh_total = 0, other_total = 0;
  std::size_t bh_comms = 0, other_comms = 0;
  for (const auto& [community, stats] : study.usage().stats()) {
    bool is_bh = study.dictionary().is_blackhole(community);
    for (const auto& [len, count] : stats.prefix_len_counts) {
      (is_bh ? bh_mass[len] : other_mass[len]) += static_cast<double>(count);
      (is_bh ? bh_total : other_total) += static_cast<double>(count);
    }
    (is_bh ? bh_comms : other_comms) += 1;
  }

  std::printf("prefix-length mass per community class (the Fig 2 surface,\n");
  std::printf("collapsed over the tag axis):\n\n");
  stats::Table table({"Prefix length", "blackhole comms", "other comms"});
  for (std::uint8_t len : {8, 16, 18, 20, 22, 24, 25, 28, 30, 32}) {
    double bh = bh_total > 0 ? (bh_mass.contains(len) ? bh_mass[len] / bh_total : 0) : 0;
    double other =
        other_total > 0 ? (other_mass.contains(len) ? other_mass[len] / other_total : 0) : 0;
    table.add_row({"/" + std::to_string(len), stats::pct(bh, 1),
                   stats::pct(other, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());

  double bh_ms = 0, other_ms = 0;
  for (const auto& [len, mass] : bh_mass) {
    if (len > 24) bh_ms += mass;
  }
  for (const auto& [len, mass] : other_mass) {
    if (len > 24) other_ms += mass;
  }
  bench::compare("blackhole comms applied on >/24", "almost exclusively /32",
                 stats::pct(bh_total ? bh_ms / bh_total : 0, 1));
  bench::compare("other comms applied on >/24", "~0 (red plane at /24)",
                 stats::pct(other_total ? other_ms / other_total : 0, 1));
  bench::compare("communities observed", "-",
                 std::to_string(bh_comms) + " blackhole / " +
                     std::to_string(other_comms) + " other");

  // Extended-dictionary inference.
  auto inferred = dictionary::infer_undocumented(
      study.usage(), study.dictionary(), study.graph());
  std::set<bgp::Asn> inferred_ases;
  std::size_t true_positive = 0, follow_666 = 0;
  for (const auto& ic : inferred) {
    inferred_ases.insert(ic.provider_asn);
    const topology::AsNode* node = study.graph().find(ic.provider_asn);
    if (node && node->blackhole.offers_blackholing) ++true_positive;
    if (ic.community.value() == 666) ++follow_666;
  }
  std::printf("\nextended dictionary (§4.1):\n");
  bench::compare("inferred undocumented communities", "111",
                 std::to_string(inferred.size()),
                 "(scales with workload volume)");
  bench::compare("ASes with inferred communities", "102",
                 std::to_string(inferred_ases.size()));
  bench::compare("precision of inference", "high (validated)",
                 inferred.empty()
                     ? "n/a"
                     : stats::pct(static_cast<double>(true_positive) /
                                  static_cast<double>(inferred.size()), 0));
  bench::compare("inferred following ASN:666 pattern", "many",
                 std::to_string(follow_666) + " of " +
                     std::to_string(inferred.size()));
  std::printf(
      "\nper the paper, inferred communities are reported but NOT merged\n"
      "into the documented dictionary used for inference.\n");
  return 0;
}
