// Fig 7b: number of blackholing providers per blackholing event —
// 28% of events involve multiple providers, 2% more than 10, max 20.
#include "bench_common.h"

#include "stats/histogram.h"

using namespace bgpbh;

int main() {
  bench::header("Fig 7b — #blackholing providers per blackholing event",
                "Giotsas et al., IMC'17, Fig 7b + §9 global vs local");

  core::Study study(bench::focus_config());
  study.run();

  stats::IntHistogram histogram;
  for (const auto& e : study.prefix_events()) {
    histogram.add(static_cast<std::int64_t>(e.providers.size()));
  }
  std::printf("%s\n",
              histogram.ascii_plot("providers per event (log y)", true).c_str());

  bench::compare("events with multiple providers", "28%",
                 stats::pct(histogram.fraction_at_least(2), 0));
  bench::compare("events with >10 providers", "2%",
                 stats::pct(histogram.fraction_at_least(11), 1));
  bench::compare("max providers on one event", "20",
                 std::to_string(histogram.max_key()));

  // Ground-truth comparison: the paper notes observed multi-provider
  // counts are a lower bound (visibility limits).
  stats::IntHistogram truth_histogram;
  for (const auto& t : study.ground_truth()) {
    truth_histogram.add(static_cast<std::int64_t>(t.episode.providers.size() +
                                                  t.episode.ixps.size()));
  }
  bench::compare("ground-truth multi-provider episodes",
                 "higher than observed (visibility)",
                 stats::pct(truth_histogram.fraction_at_least(2), 0),
                 "(observed is a lower bound, §9)");
  return 0;
}
