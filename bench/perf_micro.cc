// Microbenchmarks for the performance-critical components: the
// inference engine's negative path (tag-less updates — the dominant
// case in any realistic feed), the compiled-dictionary fast path vs
// the std::map source dictionary, allocation-free AS-path scans,
// Patricia-trie lookups, and the BGP UPDATE/MRT codecs — the "timely
// parsing" property BGPStream demonstrated (§1) and that a
// near-real-time deployment of this methodology depends on (§10).
//
// Self-contained timing harness (no external benchmark dependency) so
// it runs everywhere the library builds, and emits machine-readable
// results to BENCH_engine.json — the perf trajectory every PR is
// measured against.
//
//   perf_micro [--quick] [--out <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_meta.h"
#include "core/engine.h"
#include "core/study.h"
#include "dictionary/compiled.h"
#include "net/patricia.h"

using namespace bgpbh;

namespace {

struct Result {
  std::string name;
  double ns_per_op = 0;
  double ops_per_sec = 0;
  std::uint64_t iters = 0;
};

double g_min_seconds = 0.25;

// The seed repo's negative-path cost (ns/update), measured by this
// harness at PR 0 on the reference dev container.  The "vs seed"
// speedup is derived from this recorded constant; the "fast vs slow"
// speedup is a same-run A/B of the compiled-dictionary path against
// the std::map path — the two ratios answer different questions and
// BENCH_engine.json reports both under distinct names.
constexpr double kSeedNegativePathNs = 66.0;

// Runs `body(i)` in doubling rounds until one round exceeds the time
// floor, then reports that round — self-calibrating across machines.
template <typename F>
Result run_bench(const char* name, F&& body) {
  Result r;
  r.name = name;
  std::uint64_t iters = 1024;
  for (;;) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) body(i);
    double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (secs >= g_min_seconds || iters >= (std::uint64_t{1} << 32)) {
      r.iters = iters;
      r.ns_per_op = secs / static_cast<double>(iters) * 1e9;
      r.ops_per_sec = static_cast<double>(iters) / secs;
      break;
    }
    iters *= 2;
  }
  std::printf("  %-38s %10.1f ns/op  %14.0f ops/sec\n", r.name.c_str(),
              r.ns_per_op, r.ops_per_sec);
  return r;
}

// ---- fixtures ----------------------------------------------------------

struct EngineFixture {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::Registry registry = topology::Registry::build(graph, 0.72, 0.95, 42);
  dictionary::Corpus corpus = dictionary::generate_corpus(graph, 42);
  dictionary::BlackholeDictionary dict =
      dictionary::build_documented_dictionary(corpus, registry);
  dictionary::CompiledDictionary compiled{dict};
};

EngineFixture& fixture() {
  static EngineFixture f;
  return f;
}

bgp::UpdateBody sample_body() {
  bgp::UpdateBody body;
  body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  body.as_path = bgp::AsPath::of({3356, 1299, 64500});
  body.next_hop = *net::IpAddr::parse("198.51.100.1");
  body.communities.add(bgp::Community(65535, 666));
  body.communities.add(bgp::Community(3356, 9999));
  return body;
}

// A tag-less update: regular service communities, no blackhole tag —
// what almost every update in a live feed looks like.  This is the
// negative-path scenario the zero-allocation fast path targets.
bgp::ObservedUpdate tagless_update() {
  bgp::ObservedUpdate u;
  u.peer_ip = *net::IpAddr::parse("198.51.100.9");
  u.peer_asn = 3356;
  u.body.as_path = bgp::AsPath::of({3356, 3356, 1299, 2914, 64500});
  u.body.communities.add(bgp::Community(3356, 120));
  u.body.communities.add(bgp::Community(1299, 3000));
  u.body.announced.push_back(*net::Prefix::parse("20.7.0.0/16"));
  return u;
}

// ---- scenarios ---------------------------------------------------------

Result bench_engine_update(const char* name, bgp::ObservedUpdate update,
                           core::EngineConfig config) {
  auto& f = fixture();
  core::InferenceEngine engine(f.dict, f.registry, config);
  return run_bench(name, [&](std::uint64_t) {
    update.time += 1;
    engine.process(routing::Platform::kRis, update);
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_min_seconds = 0.05;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_micro [--quick] [--out <path>]\n");
      return 2;
    }
  }

  std::printf("building bench fixtures...\n");
  auto& f = fixture();
  std::printf("dictionary: %zu communities (%zu providers, %zu IXPs)\n\n",
              f.dict.num_communities(), f.dict.num_providers(), f.dict.num_ixps());

  std::vector<Result> results;

  // ---- inference engine: the negative path ----------------------------
  core::EngineConfig fast;
  core::EngineConfig slow;
  slow.use_compiled_fastpath = false;

  results.push_back(bench_engine_update("engine_negative_tagless", tagless_update(), fast));
  results.push_back(bench_engine_update("engine_negative_tagless_slowpath",
                                        tagless_update(), slow));
  bgp::ObservedUpdate no_comms = tagless_update();
  no_comms.body.communities = {};
  results.push_back(bench_engine_update("engine_negative_no_communities",
                                        std::move(no_comms), fast));

  // ---- inference engine: the positive path ----------------------------
  {
    // Find a documented provider for a realistic tagged update.
    bgp::Community community;
    bgp::Asn provider = 0;
    for (const auto& [c, entry] : f.dict.entries()) {
      if (entry.provider_asns.size() == 1) {
        community = c;
        provider = entry.provider_asns[0];
        break;
      }
    }
    core::InferenceEngine engine(f.dict, f.registry);
    bgp::ObservedUpdate update;
    update.peer_ip = *net::IpAddr::parse("198.51.100.9");
    update.peer_asn = provider;
    update.body.as_path = bgp::AsPath::of({provider, 64500});
    update.body.communities.add(community);
    std::uint32_t host = 0x14000000;
    results.push_back(run_bench("engine_positive_open_event", [&](std::uint64_t) {
      update.time += 1;
      update.body.announced.assign(
          1, net::Prefix(net::IpAddr(net::Ipv4Addr(host++)), 32));
      engine.process(routing::Platform::kRis, update);
    }));
  }

  // ---- dictionary lookups ---------------------------------------------
  {
    bgp::Community hit = f.dict.entries().begin()->first;
    bgp::Community miss(3356, 120);  // service community, never a blackhole
    volatile bool sink = false;
    results.push_back(run_bench("dict_compiled_prefilter_miss", [&](std::uint64_t) {
      sink = f.compiled.maybe_blackhole(miss);
    }));
    results.push_back(run_bench("dict_compiled_lookup_hit", [&](std::uint64_t) {
      sink = f.compiled.lookup(hit) != nullptr;
    }));
    results.push_back(run_bench("dict_map_lookup_hit", [&](std::uint64_t) {
      sink = f.dict.lookup(hit) != nullptr;
    }));
    results.push_back(run_bench("dict_map_lookup_miss", [&](std::uint64_t) {
      sink = f.dict.lookup(miss) != nullptr;
    }));
    (void)sink;
  }

  // ---- AS path scans ---------------------------------------------------
  {
    bgp::AsPath path = bgp::AsPath::of(
        {3356, 3356, 3356, 1299, 2914, 2914, 6939, 64500, 64500});
    volatile std::size_t sink = 0;
    results.push_back(run_bench("aspath_index_of_inplace", [&](std::uint64_t) {
      auto idx = path.index_of(6939);
      sink = idx ? *idx : 0;
    }));
    results.push_back(run_bench("aspath_unique_length_inplace", [&](std::uint64_t) {
      sink = path.unique_length();
    }));
    (void)sink;
  }

  // ---- Patricia trie ---------------------------------------------------
  {
    net::PatriciaTrie<int> trie;
    util::Rng rng(1);
    for (int i = 0; i < 100000; ++i) {
      std::uint32_t addr = static_cast<std::uint32_t>(rng.next_u64());
      std::uint8_t len = static_cast<std::uint8_t>(8 + rng.uniform(25));
      trie.insert(net::Prefix(net::IpAddr(net::Ipv4Addr(addr)), len), i);
    }
    std::uint64_t x = 12345;
    volatile bool sink = false;
    results.push_back(run_bench("patricia_lookup_100k", [&](std::uint64_t) {
      x = x * 6364136223846793005ULL + 1;
      net::IpAddr ip{net::Ipv4Addr(static_cast<std::uint32_t>(x >> 32))};
      sink = trie.lookup(ip) != nullptr;
    }));
    (void)sink;
  }

  // ---- BGP UPDATE / MRT codecs ----------------------------------------
  {
    auto body = sample_body();
    results.push_back(run_bench("update_encode", [&](std::uint64_t) {
      net::BufWriter w;
      bgp::encode_update_body(body, w);
    }));
    net::BufWriter w;
    bgp::encode_update_body(body, w);
    results.push_back(run_bench("update_decode", [&](std::uint64_t) {
      net::BufReader r(w.data());
      auto decoded = bgp::decode_update_body(r);
      (void)decoded;
    }));
  }

  // ---- derived metrics + JSON -----------------------------------------
  double fast_ns = 0, slow_ns = 0;
  for (const auto& r : results) {
    if (r.name == "engine_negative_tagless") fast_ns = r.ns_per_op;
    if (r.name == "engine_negative_tagless_slowpath") slow_ns = r.ns_per_op;
  }
  double speedup = fast_ns > 0 ? slow_ns / fast_ns : 0;
  double speedup_vs_seed = fast_ns > 0 ? kSeedNegativePathNs / fast_ns : 0;
  std::printf("\nnegative-path fast vs slow dictionary path (same run): %.2fx\n",
              speedup);
  std::printf("negative-path vs recorded seed (%.0f ns): %.2fx\n",
              kSeedNegativePathNs, speedup_vs_seed);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"perf_micro\",\n");
  std::fprintf(out, "  \"meta\": %s,\n", bench::meta_json().c_str());
  std::fprintf(out, "  \"unit\": {\"ns_per_op\": \"nanoseconds per operation\", "
                    "\"ops_per_sec\": \"operations per second\"},\n");
  std::fprintf(out,
               "  \"negative_path_speedup_fast_vs_slow\": %.2f,\n", speedup);
  std::fprintf(out, "  \"seed_negative_path_ns\": %.1f,\n", kSeedNegativePathNs);
  std::fprintf(out,
               "  \"negative_path_speedup_vs_seed\": %.2f,\n", speedup_vs_seed);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.2f, "
                 "\"ops_per_sec\": %.0f, \"iters\": %llu}%s\n",
                 r.name.c_str(), r.ns_per_op, r.ops_per_sec,
                 static_cast<unsigned long long>(r.iters),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
