// Microbenchmarks (google-benchmark) for the performance-critical
// components: Patricia-trie lookups, the BGP UPDATE and MRT codecs,
// blackhole propagation, and end-to-end inference throughput — the
// "timely parsing" property BGPStream demonstrated (§1) and that a
// near-real-time deployment of this methodology depends on (§10).
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "core/study.h"
#include "net/patricia.h"

using namespace bgpbh;

namespace {

// ---- Patricia trie -----------------------------------------------------

void BM_PatriciaLookup(benchmark::State& state) {
  net::PatriciaTrie<int> trie;
  util::Rng rng(1);
  for (int i = 0; i < state.range(0); ++i) {
    std::uint32_t addr = static_cast<std::uint32_t>(rng.next_u64());
    std::uint8_t len = static_cast<std::uint8_t>(8 + rng.uniform(25));
    trie.insert(net::Prefix(net::IpAddr(net::Ipv4Addr(addr)), len), i);
  }
  std::uint64_t x = 12345;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1;
    net::IpAddr ip{net::Ipv4Addr(static_cast<std::uint32_t>(x >> 32))};
    benchmark::DoNotOptimize(trie.lookup(ip));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatriciaLookup)->Arg(1000)->Arg(100000);

// ---- BGP UPDATE codec ---------------------------------------------------

bgp::UpdateBody sample_body() {
  bgp::UpdateBody body;
  body.announced.push_back(*net::Prefix::parse("130.149.1.1/32"));
  body.as_path = bgp::AsPath::of({3356, 1299, 64500});
  body.next_hop = *net::IpAddr::parse("198.51.100.1");
  body.communities.add(bgp::Community(65535, 666));
  body.communities.add(bgp::Community(3356, 9999));
  return body;
}

void BM_UpdateEncode(benchmark::State& state) {
  auto body = sample_body();
  for (auto _ : state) {
    net::BufWriter w;
    bgp::encode_update_body(body, w);
    benchmark::DoNotOptimize(w.data().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateEncode);

void BM_UpdateDecode(benchmark::State& state) {
  auto body = sample_body();
  net::BufWriter w;
  bgp::encode_update_body(body, w);
  for (auto _ : state) {
    net::BufReader r(w.data());
    benchmark::DoNotOptimize(bgp::decode_update_body(r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateDecode);

void BM_MrtStreamDecode(benchmark::State& state) {
  net::BufWriter w;
  for (int i = 0; i < 100; ++i) {
    bgp::ObservedUpdate u;
    u.time = 1000 + i;
    u.peer_ip = *net::IpAddr::parse("198.51.100.7");
    u.peer_asn = 3356;
    u.body = sample_body();
    bgp::mrt::encode_update(u, w);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::mrt::decode_updates(w.data()));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MrtStreamDecode);

// ---- inference engine ---------------------------------------------------

struct EngineFixture {
  topology::AsGraph graph = topology::generate(topology::GeneratorConfig{});
  topology::Registry registry = topology::Registry::build(graph, 0.72, 0.95, 42);
  dictionary::Corpus corpus = dictionary::generate_corpus(graph, 42);
  dictionary::BlackholeDictionary dict =
      dictionary::build_documented_dictionary(corpus, registry);
};

EngineFixture& fixture() {
  static EngineFixture f;
  return f;
}

void BM_EngineProcessBlackhole(benchmark::State& state) {
  auto& f = fixture();
  // Find a documented provider for a realistic tagged update.
  bgp::Community community;
  bgp::Asn provider = 0;
  for (const auto& [c, entry] : f.dict.entries()) {
    if (entry.provider_asns.size() == 1) {
      community = c;
      provider = entry.provider_asns[0];
      break;
    }
  }
  core::InferenceEngine engine(f.dict, f.registry);
  bgp::ObservedUpdate update;
  update.peer_ip = *net::IpAddr::parse("198.51.100.9");
  update.peer_asn = provider;
  update.body.as_path = bgp::AsPath::of({provider, 64500});
  update.body.communities.add(community);
  std::uint32_t host = 0x14000000;
  for (auto _ : state) {
    update.time += 1;
    update.body.announced.assign(
        1, net::Prefix(net::IpAddr(net::Ipv4Addr(host++)), 32));
    engine.process(routing::Platform::kRis, update);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineProcessBlackhole);

void BM_EngineProcessRegular(benchmark::State& state) {
  auto& f = fixture();
  core::InferenceEngine engine(f.dict, f.registry);
  bgp::ObservedUpdate update;
  update.peer_ip = *net::IpAddr::parse("198.51.100.9");
  update.peer_asn = 3356;
  update.body.as_path = bgp::AsPath::of({3356, 1299, 64500});
  update.body.communities.add(bgp::Community(3356, 120));
  update.body.announced.push_back(*net::Prefix::parse("20.7.0.0/16"));
  for (auto _ : state) {
    update.time += 1;
    engine.process(routing::Platform::kRis, update);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineProcessRegular);

// ---- propagation ----------------------------------------------------------

void BM_BaselinePathColdCache(benchmark::State& state) {
  auto& f = fixture();
  topology::CustomerCones cones(f.graph);
  std::size_t i = 0;
  const auto& nodes = f.graph.nodes();
  for (auto _ : state) {
    // Fresh engine each time: measures the per-origin tree computation.
    routing::PropagationEngine engine(f.graph, cones, 5);
    benchmark::DoNotOptimize(
        engine.baseline_path(nodes[i % nodes.size()].asn,
                             nodes[(i * 7 + 13) % nodes.size()].asn));
    ++i;
  }
}
BENCHMARK(BM_BaselinePathColdCache);

void BM_PropagateBlackhole(benchmark::State& state) {
  auto& f = fixture();
  static topology::CustomerCones cones(f.graph);
  static routing::PropagationEngine engine(f.graph, cones, 5);
  // A stub with a blackholing provider.
  routing::BlackholeAnnouncement ann;
  for (const auto& node : f.graph.nodes()) {
    if (node.tier != topology::Tier::kStub) continue;
    for (bgp::Asn p : node.providers) {
      const topology::AsNode* pn = f.graph.find(p);
      if (pn && pn->blackhole.offers_blackholing) {
        ann.user = node.asn;
        ann.prefix = net::Prefix(
            net::Ipv4Addr(node.v4_block.addr().v4().value() + 1), 32);
        ann.target_providers = {p};
        ann.bundle = true;
        break;
      }
    }
    if (ann.user) break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.propagate_blackhole(ann));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PropagateBlackhole);

}  // namespace

BENCHMARK_MAIN();
