// Fig 6: blackholing (a) provider ASes and (b) user ASes per country
// (RIR registration). The paper's top countries: providers RU/US/DE,
// users RU/US/DE with BR and UA in the top five.
#include "bench_common.h"

using namespace bgpbh;

namespace {
void print_ranked(const std::string& title,
                  const std::map<std::string, std::size_t>& counts,
                  std::size_t top_n) {
  std::vector<std::pair<std::string, std::size_t>> ranked(counts.begin(),
                                                          counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::printf("%s\n", title.c_str());
  stats::Table table({"Rank", "Country", "#ASes", "bar"});
  double max = ranked.empty() ? 1 : static_cast<double>(ranked.front().second);
  for (std::size_t i = 0; i < std::min(top_n, ranked.size()); ++i) {
    std::size_t bar = static_cast<std::size_t>(
        static_cast<double>(ranked[i].second) / max * 40.0);
    table.add_row({std::to_string(i + 1), ranked[i].first,
                   std::to_string(ranked[i].second), std::string(bar, '#')});
  }
  std::printf("%s\n", table.to_string().c_str());
}

std::vector<std::string> top_codes(const std::map<std::string, std::size_t>& counts,
                                   std::size_t n) {
  std::vector<std::pair<std::string, std::size_t>> ranked(counts.begin(),
                                                          counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::string> out;
  for (std::size_t i = 0; i < std::min(n, ranked.size()); ++i) {
    out.push_back(ranked[i].first);
  }
  return out;
}
}  // namespace

int main() {
  bench::header("Fig 6 — blackholing providers/users per country",
                "Giotsas et al., IMC'17, Fig 6a/6b + §7/§8");

  core::Study study(bench::focus_config());
  study.run();
  auto t0 = util::focus_start(), t1 = util::focus_end();

  auto providers = study.providers_per_country(t0, t1);
  auto users = study.users_per_country(t0, t1);

  print_ranked("Fig 6a — blackholing provider ASes per country:", providers, 12);
  print_ranked("Fig 6b — blackholing user ASes per country:", users, 12);

  auto ptop = top_codes(providers, 3);
  auto utop5 = top_codes(users, 5);
  auto in = [](const std::vector<std::string>& v, const char* c) {
    return std::find(v.begin(), v.end(), c) != v.end();
  };
  std::printf("shape checks:\n");
  bench::compare("provider top-3 contains RU, US, DE", "yes",
                 in(ptop, "RU") && in(ptop, "US") && in(ptop, "DE") ? "yes"
                                                                    : "close",
                 ("top-3: " + ptop[0] + " " + (ptop.size() > 1 ? ptop[1] : "") +
                  " " + (ptop.size() > 2 ? ptop[2] : ""))
                     .c_str());
  bench::compare("user top-5 contains BR and UA", "yes",
                 in(utop5, "BR") && in(utop5, "UA") ? "yes" : "close");
  bench::compare("max providers in one country", "45",
                 providers.empty() ? "0"
                                   : std::to_string(top_codes(providers, 1)[0] ==
                                                            ""
                                                        ? 0
                                                        : providers.at(
                                                              top_codes(providers, 1)[0])));
  bench::compare("max users in one country", "189",
                 users.empty() ? "0"
                               : std::to_string(users.at(top_codes(users, 1)[0])),
                 util::strf("(x%.0f scale)", 1.0 / bench::kIntensity).c_str());
  return 0;
}
