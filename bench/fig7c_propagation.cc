// Fig 7c: AS distance between the BGP collector and the blackholing
// provider — ~50% "no path" (detected via community bundling), ~20% at
// distance 0 (collector at the blackholing IXP), >10% at distance 1
// (direct peering), and a tail out to 6 (propagation despite RFC 7999's
// no-export requirement).  Includes the bundling ablation.
#include "bench_common.h"

#include "stats/histogram.h"

using namespace bgpbh;

int main() {
  bench::header("Fig 7c — AS distance collector <-> blackholing provider",
                "Giotsas et al., IMC'17, Fig 7c + §9 propagation");

  core::Study study(bench::focus_config());
  study.run();

  stats::IntHistogram histogram;
  std::size_t total = 0, no_path = 0, dist0 = 0, dist1 = 0, beyond1 = 0;
  for (const auto& e : study.events()) {
    ++total;
    histogram.add(e.as_distance);
    if (e.as_distance == core::kNoPathDistance) ++no_path;
    else if (e.as_distance == 0) ++dist0;
    else if (e.as_distance == 1) ++dist1;
    else ++beyond1;
  }
  std::printf("%s\n",
              histogram.ascii_plot("AS distance (-1 = no path/bundled)", true)
                  .c_str());

  bench::compare("no-path (bundled communities)", "~50%",
                 stats::pct(static_cast<double>(no_path) / total, 0),
                 "(bundling contributes about half of inferences)");
  bench::compare("distance 0 (collector at the IXP)", "~20%",
                 stats::pct(static_cast<double>(dist0) / total, 0));
  bench::compare("distance 1 (direct peering)", ">10%",
                 stats::pct(static_cast<double>(dist1) / total, 0));
  bench::compare("propagated >= 1 hop beyond provider", "30% of on-path",
                 stats::pct(static_cast<double>(beyond1) /
                            std::max<std::size_t>(1, dist1 + beyond1 + dist0), 0),
                 "(violating RFC 7999 no-export)");

  // Detection-kind breakdown.
  std::map<core::DetectionKind, std::size_t> kinds;
  for (const auto& e : study.events()) kinds[e.kind] += 1;
  std::printf("\ndetection kinds:\n");
  for (auto& [kind, n] : kinds) {
    bench::compare(core::to_string(kind), "-",
                   stats::pct(static_cast<double>(n) / total, 1));
  }

  // Ablation: disable bundling detection (design decision #2 in
  // DESIGN.md): roughly the no-path share of inferences disappears.
  auto config = bench::focus_config();
  config.engine.detect_bundled = false;
  core::Study ablated(config);
  ablated.run();
  std::printf("\nablation — bundling detection disabled:\n");
  bench::compare("peer events (baseline)", "-", std::to_string(total));
  bench::compare("peer events (no bundling)", "-",
                 std::to_string(ablated.events().size()),
                 stats::pct(1.0 - static_cast<double>(ablated.events().size()) /
                                      total, 0)
                     .insert(0, "lost ")
                     .c_str());
  auto t0 = util::focus_start(), t1 = util::focus_end();
  bench::compare("visible providers (baseline)", "-",
                 std::to_string(study.table3_all(t0, t1).providers));
  bench::compare("visible providers (no bundling)", "-",
                 std::to_string(ablated.table3_all(t0, t1).providers));
  return 0;
}
