// Shared scaffolding for the per-table/figure bench binaries.
//
// Every binary regenerates one table or figure of the paper from a
// fresh deterministic simulation and prints the paper's reported value
// next to the measured one.  Absolute numbers are scale-reduced (the
// simulation runs a ~2K-AS Internet and a volume-scaled workload, see
// EXPERIMENTS.md); the *shape* — who wins, ratios, crossovers — is the
// reproduction target.
#pragma once

#include <cstdio>
#include <string>

#include "core/study.h"
#include "stats/table.h"
#include "util/strings.h"

namespace bgpbh::bench {

// The workload intensity used by all benches (fraction of the paper's
// daily volumes).  Chosen so every bench finishes in seconds.
inline constexpr double kIntensity = 0.05;

inline core::StudyConfig focus_config() {
  core::StudyConfig config;
  config.window_start = util::focus_start();   // 2016-08-01
  config.window_end = util::focus_end();       // 2017-04-01
  config.workload.intensity_scale = kIntensity;
  return config;
}

inline core::StudyConfig longitudinal_config() {
  core::StudyConfig config;
  config.window_start = util::study_start();   // 2014-12-01
  config.window_end = util::study_end();       // 2017-04-01
  config.workload.intensity_scale = kIntensity;
  return config;
}

inline core::StudyConfig march2017_config() {
  core::StudyConfig config;
  config.window_start = util::march2017_start();
  config.window_end = util::march2017_end();
  config.workload.intensity_scale = kIntensity;
  return config;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("workload intensity scale: %.2f of paper volume\n", kIntensity);
  std::printf("================================================================\n\n");
}

// "paper X / measured Y" comparison line.
inline void compare(const std::string& metric, const std::string& paper,
                    const std::string& measured, const std::string& note = "") {
  std::printf("  %-46s paper: %-14s measured: %-14s %s\n", metric.c_str(),
              paper.c_str(), measured.c_str(), note.c_str());
}

inline std::string num(double v, int precision = 0) {
  return util::strf("%.*f", precision, v);
}

}  // namespace bgpbh::bench
