// Fig 4(a/b/c): longitudinal growth of blackholing usage, December 2014
// through March 2017 — daily active blackholing providers, users and
// prefixes, with the labelled DDoS spikes (A-F).
#include "bench_common.h"

using namespace bgpbh;

int main() {
  bench::header("Fig 4 — the rise of BGP blackholing (Dec'14 - Mar'17)",
                "Giotsas et al., IMC'17, Fig 4a/4b/4c + §6");

  core::Study study(bench::longitudinal_config());
  study.run();

  auto providers = study.daily_providers();
  auto users = study.daily_users();
  auto prefixes = study.daily_prefixes();

  std::vector<stats::DailySeries::Annotation> notes;
  for (auto [day, label] : study.workload().timeline().annotations()) {
    notes.push_back({day, std::string(1, label)});
  }

  std::printf("%s\n", providers.ascii_plot("Fig 4a — blackholing providers/day",
                                           notes).c_str());
  std::printf("%s\n", users.ascii_plot("Fig 4b — blackholing users/day",
                                       notes).c_str());
  std::printf("%s\n", prefixes.ascii_plot("Fig 4c — blackholed prefixes/day",
                                          notes).c_str());

  // Growth factors: first vs last quarter of the window.
  auto t0 = util::study_start();
  auto t1 = util::study_end();
  auto early_end = t0 + 90 * util::kDay;
  auto late_start = t1 - 90 * util::kDay;
  auto factor = [&](const stats::DailySeries& s) {
    double early = s.mean_in(t0, early_end);
    double late = s.mean_in(late_start, t1);
    return early > 0 ? late / early : 0.0;
  };
  std::printf("growth checks (first 90 days vs last 90 days):\n");
  bench::compare("provider growth", "~2.5x (40 -> 100/day)",
                 bench::num(factor(providers), 1) + "x",
                 util::strf("(%.0f -> %.0f/day)", providers.mean_in(t0, early_end),
                            providers.mean_in(late_start, t1)).c_str());
  bench::compare("user growth", "~4x (peak 400/day)",
                 bench::num(factor(users), 1) + "x",
                 util::strf("(%.0f -> %.0f/day, peak %.0f)",
                            users.mean_in(t0, early_end),
                            users.mean_in(late_start, t1), users.max()).c_str());
  bench::compare("prefix growth", "~6x (500 -> 3000, peak 5000)",
                 bench::num(factor(prefixes), 1) + "x",
                 util::strf("(%.0f -> %.0f/day, peak %.0f; x%.0f scale)",
                            prefixes.mean_in(t0, early_end),
                            prefixes.mean_in(late_start, t1), prefixes.max(),
                            1.0 / bench::kIntensity).c_str());

  // Spikes: each labelled date should sit above its local baseline.
  std::printf("\nDDoS-correlated spikes (§6):\n");
  for (const auto& spike : study.workload().timeline().spikes()) {
    std::int64_t day = util::day_index(spike.date);
    double at = prefixes.at_day(day);
    double baseline = 0;
    int n = 0;
    for (std::int64_t d = day - 10; d < day - 2; ++d) {
      baseline += prefixes.at_day(d);
      ++n;
    }
    baseline = n ? baseline / n : 0;
    bench::compare(
        util::strf("spike %c (%s)", spike.label,
                   util::format_date(spike.date).c_str()),
        "elevated",
        util::strf("%.0f vs baseline %.0f (%.1fx)", at, baseline,
                   baseline > 0 ? at / baseline : 0),
        spike.description.c_str());
  }

  // Totals over the whole window.
  std::set<core::ProviderRef> all_providers;
  std::set<bgp::Asn> all_users;
  std::set<net::Prefix> all_prefixes;
  for (const auto& e : study.events()) {
    all_providers.insert(e.provider);
    if (e.user) all_users.insert(e.user);
    all_prefixes.insert(e.prefix);
  }
  std::printf("\ntotals over the full window:\n");
  bench::compare("blackholing providers identified", "270",
                 std::to_string(all_providers.size()));
  bench::compare("blackholing users identified", "1,461",
                 std::to_string(all_users.size()),
                 util::strf("(x%.0f scale)", 1.0 / bench::kIntensity).c_str());
  bench::compare("blackholed prefixes identified", "161,031",
                 stats::with_commas(all_prefixes.size()),
                 util::strf("(x%.0f scale)", 1.0 / bench::kIntensity).c_str());
  return 0;
}
