// Table 2: documented blackhole communities per network type, plus the
// §4.1 dictionary statistics: community format conventions, RFC 7999
// adoption among IXPs, large-community adoption, and the comparison
// against the 2008 Donnet-Bonaventure dictionary (72% still active,
// none re-purposed).
#include "bench_common.h"

#include "dictionary/dictionary.h"

using namespace bgpbh;
using topology::NetworkType;

int main() {
  bench::header("Table 2 — documented blackhole communities by network type",
                "Giotsas et al., IMC'17, Table 2 + §4.1");

  core::Study study(bench::march2017_config());
  const auto& dict = study.dictionary();
  auto breakdown = dict.breakdown(study.registry());

  struct PaperRow {
    NetworkType type;
    std::size_t networks, communities;
  };
  const PaperRow paper[] = {
      {NetworkType::kTransitAccess, 198, 223},
      {NetworkType::kIxp, 49, 2},
      {NetworkType::kContent, 23, 25},
      {NetworkType::kEduResearchNfP, 15, 20},
      {NetworkType::kEnterprise, 8, 9},
      {NetworkType::kUnknown, 14, 4},
  };

  stats::Table table({"Network type", "paper #nets", "measured #nets",
                      "paper #comms", "measured #comms"});
  std::size_t total_nets = 0;
  for (const auto& row : paper) {
    auto it = breakdown.find(row.type);
    std::size_t nets = it == breakdown.end() ? 0 : it->second.networks;
    std::size_t comms = it == breakdown.end() ? 0 : it->second.communities;
    total_nets += nets;
    table.add_row({topology::to_string(row.type), std::to_string(row.networks),
                   std::to_string(nets), std::to_string(row.communities),
                   std::to_string(comms)});
  }
  table.add_row({"TOTAL unique", "307", std::to_string(total_nets), "292",
                 std::to_string(dict.num_communities())});
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "note: measured type counts classify through the (incomplete)\n"
      "PeeringDB/CAIDA pipeline, so some typed providers land in Unknown —\n"
      "exactly the effect the paper's classification procedure has.\n\n");

  // §4.1: community value conventions among ISP providers.
  std::size_t v666 = 0, v66 = 0, v999 = 0, isp_nets = 0;
  std::map<bgp::Asn, bgp::Community> primary;
  for (const auto& [community, entry] : dict.entries()) {
    for (bgp::Asn asn : entry.provider_asns) {
      if (!primary.contains(asn)) primary.emplace(asn, community);
    }
  }
  for (const auto& [asn, community] : primary) {
    ++isp_nets;
    if (community.value() == 666) ++v666;
    if (community.value() == 66) ++v66;
    if (community.value() == 999) ++v999;
  }
  bench::compare("ASN:666 convention share", "51%",
                 stats::pct(static_cast<double>(v666) / isp_nets, 0));
  bench::compare("ASN:66 users", "popular",
                 std::to_string(v66) + " nets");
  bench::compare("ASN:999 users", "popular",
                 std::to_string(v999) + " nets");

  // IXPs: RFC 7999 adoption.
  const auto* rfc = dict.lookup(bgp::Community::rfc7999_blackhole());
  bench::compare("IXPs using RFC7999 65535:666", "47 of 49",
                 std::to_string(rfc ? rfc->ixp_ids.size() : 0) + " of " +
                     std::to_string(dict.num_ixps()));

  // Large communities: 6 of 307 adopted the new formats; 1 for
  // blackholing.
  std::size_t large_bh = 0;
  for (const auto& node : study.graph().nodes()) {
    if (node.blackhole.large_community &&
        dict.is_blackhole(*node.blackhole.large_community))
      ++large_bh;
  }
  bench::compare("networks using large comm for blackholing", "1",
                 std::to_string(large_bh));

  // IXP blackhole IP conventions (.66 / dead:beef).
  std::size_t ip66 = 0, deadbeef = 0, bh_ixps = 0;
  for (const auto& ixp : study.graph().ixps()) {
    if (!ixp.offers_blackholing) continue;
    ++bh_ixps;
    if ((ixp.blackhole_ip_v4.v4().value() & 0xFF) == 66) ++ip66;
    if (ixp.blackhole_ip_v6.group(6) == 0xdead &&
        ixp.blackhole_ip_v6.group(7) == 0xbeef)
      ++deadbeef;
  }
  bench::compare("IXP v4 blackhole IP ends .66", "most common",
                 std::to_string(ip66) + "/" + std::to_string(bh_ixps));
  bench::compare("IXP v6 blackhole IP dead:beef", "most common",
                 std::to_string(deadbeef) + "/" + std::to_string(bh_ixps));

  // 2008-dictionary comparison.
  auto legacy = dictionary::make_legacy_dictionary(study.graph(), 0.72, 42);
  auto cmp = dictionary::compare_with_legacy(dict, legacy, study.graph());
  bench::compare("2008 dictionary still active", "72%",
                 stats::pct(static_cast<double>(cmp.still_active) /
                            static_cast<double>(cmp.total), 0));
  bench::compare("2008 dictionary re-purposed", "0",
                 std::to_string(cmp.repurposed));

  // Source mix (paper: IRR 209 nets / web 93 / private 5).
  std::size_t irr = 0, web = 0, priv = 0;
  for (const auto& node : study.graph().nodes()) {
    if (!node.blackhole.offers_blackholing) continue;
    if (node.blackhole.documented_in_irr) ++irr;
    else if (node.blackhole.documented_on_web) ++web;
  }
  priv = study.corpus().private_communications.size();
  bench::compare("providers documented via IRR", "209", std::to_string(irr));
  bench::compare("providers documented via web", "93", std::to_string(web));
  bench::compare("providers via private communication", "5", std::to_string(priv));
  return 0;
}
