// Fig 9a/9b: impact of blackholing on the data plane, measured with
// traceroutes from four probe groups during vs after each event —
// >80% of traces end earlier during blackholing; mean reduction ~5.9
// IP hops and 2-4 AS hops; 16% of traffic dies at the destination AS or
// its upstream; /24-or-shorter blackholings show no path difference.
#include "bench_common.h"

#include "stats/cdf.h"

#include "dataplane/efficacy.h"

using namespace bgpbh;

int main() {
  bench::header("Fig 9a/9b — traceroute path-length impact of blackholing",
                "Giotsas et al., IMC'17, Fig 9a/9b + §10 active");

  core::StudyConfig config = bench::march2017_config();
  core::Study study(config);
  study.run();

  // Measurement campaign over the March 2017 episodes (paper: 2,967
  // events, 337 users).
  std::vector<workload::Episode> episodes;
  std::set<bgp::Asn> users;
  for (const auto& t : study.ground_truth()) {
    if (t.episode.prefix.is_v4() &&
        (!t.activated_providers.empty() || !t.activated_ixps.empty())) {
      episodes.push_back(t.episode);
      users.insert(t.episode.user);
    }
  }
  std::printf("events measured: %zu from %zu users (paper: 2,967 from 337; x%.0f scale)\n\n",
              episodes.size(), users.size(), 1.0 / bench::kIntensity);

  dataplane::EfficacyMeasurer measurer(study.graph(), study.cones(),
                                       study.propagation(), 9090);
  auto campaign = measurer.measure(episodes);

  auto ip_after = campaign.ip_delta_after_vs_during();
  auto ip_neighbor = campaign.ip_delta_neighbor_vs_blackholed();
  auto as_after = campaign.as_delta_after_vs_during();
  auto as_neighbor = campaign.as_delta_neighbor_vs_blackholed();

  std::printf("%s\n", ip_after.ascii_plot(
      "Fig 9a — IP path-length delta: after - during (hops)").c_str());
  std::printf("%s\n", ip_neighbor.ascii_plot(
      "Fig 9a — IP path-length delta: neighbor - blackholed (hops)").c_str());
  std::printf("%s\n", as_after.ascii_plot(
      "Fig 9b — AS path-length delta: after - during (AS hops)").c_str());

  std::printf("headline numbers:\n");
  bench::compare("traces ending earlier during blackholing", ">80%",
                 stats::pct(campaign.fraction_paths_shorter_during(), 0));
  bench::compare("equal-or-shorter during (multihoming etc.)", "~15%",
                 stats::pct(1.0 - campaign.fraction_paths_shorter_during(), 0));
  bench::compare("mean IP-hop reduction", "5.9 hops",
                 bench::num(campaign.mean_ip_hop_reduction(), 1) + " hops");
  bench::compare("mean AS-hop reduction", "2-4 AS hops",
                 bench::num(campaign.mean_as_hop_reduction(), 1) + " AS hops");
  bench::compare("dropped at destination AS or its upstream", "16%",
                 stats::pct(campaign.fraction_dropped_at_destination_or_upstream(), 0));
  bench::compare("neighbor-vs-blackholed median delta", "positive",
                 bench::num(ip_neighbor.quantile(0.5), 1) + " hops");

  // Less-specific-than-/24 control: no path difference (operators
  // respect the requirement to blackhole only more specific than /24).
  std::vector<workload::Episode> wide;
  for (auto e : episodes) {
    if (wide.size() >= 10) break;
    e.prefix = e.prefix.is_v4() ? e.prefix.parent(20) : e.prefix;
    wide.push_back(e);
  }
  auto wide_campaign = measurer.measure(wide);
  std::printf("\ncontrol — same targets blackholed as /20 (rejected by "
              "providers/IXPs per best practice):\n");
  bench::compare("mean IP-hop reduction for <= /24 blackholing",
                 "virtually none",
                 bench::num(wide_campaign.mean_ip_hop_reduction(), 2) + " hops");
  return 0;
}
