// Streaming-pipeline throughput: updates/sec through the sharded live
// ingestion path (source -> zero-copy shard router -> batched SPSC
// queues of 16-byte SubUpdateRefs -> engine shards -> event store
// lanes) at 1, 2, 4 and 8 shards, against the sequential single-engine
// replay as baseline, plus an MPMC row (several producer threads, one
// per collector platform).
//
// The §4.2 monitoring problem is embarrassingly parallel in the
// (peer, prefix) key — this bench shows the shard fan-out turning that
// into wall-clock throughput on multi-core hardware (on a single
// hardware thread the shard counts collapse to roughly the 1-shard
// pipeline rate; BENCH_stream.json records hardware_threads so scaling
// regressions stay attributable).  Every configuration is checked
// against the sequential event set before its numbers are reported.
//
// Beyond throughput, the bench enforces the zero-copy contract: a
// counting allocator (global operator new, thread-local counters)
// proves that routing an announced-prefix sub-update through a warm
// pipeline performs ZERO heap allocations — the run fails otherwise —
// and a per-stage microbench (route / queue / store-drain ns/op)
// attributes any future regression to its stage.
//
// The persistence stages measure the spill path of the same store
// (sealed chunks -> bounded queue -> segment log, src/storage/) and
// the reopen read path (segment set open + index-seeking window
// query); the segment directory they write is left on disk
// (--segments-out, default BENCH_segments/) so CI can upload a sample
// of the on-disk format as an artifact.
//
// The fabric stages (--fabric) run the distributed plane end to end:
// two in-process fabric::ShardServers on loopback ephemeral ports, a
// fabric AnalysisSession pushing the study stream through the framed
// APPEND protocol (fabric_append_ns_per_event), one live slot
// migration between the servers (rebalance_ms), and an equality check
// against a matching in-process session — a mismatch fails the run
// like every other stage.
//
//   perf_stream [--smoke] [--fabric] [--producers <P>] [--out <path>]
//               [--segments-out <dir>]
//
// --smoke shrinks the workload and runs only 1 and 4 shards (CI).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "api/dispatch.h"
#include "api/query.h"
#include "api/session.h"
#include "api/sink.h"
#include "bench_meta.h"
#include "core/study.h"
#include "fabric/server.h"
#include "storage/segment_reader.h"
#include "storage/spill.h"
#include "stream/pipeline.h"
#include "stream/source.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

// ---- counting allocator ------------------------------------------------
// Thread-local so the producer thread's allocation count is exact no
// matter what the shard workers do concurrently.

namespace {
thread_local std::uint64_t t_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace bgpbh;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ShardResult {
  std::size_t shards = 0;
  std::size_t producers = 1;
  double rate = 0;
  double speedup_vs_sequential = 0;
  bool events_identical = false;
};

constexpr std::size_t kNumPlatforms = routing::kNumPlatforms;
using routing::platform_index;

// Runs `workload` through a pipeline with the given shard/producer
// counts.  With several producers the stream is partitioned by
// platform — one producer per collector platform, the MPMC deployment
// shape — which preserves per-key order because collector sessions
// (and hence peer keys) are platform-disjoint.
double run_pipeline(const core::Study& study,
                    const std::vector<routing::FeedUpdate>& workload,
                    std::size_t shards, std::size_t producers,
                    util::SimTime end_time,
                    const std::vector<core::PeerEvent>& reference,
                    bool* events_identical) {
  auto t0 = std::chrono::steady_clock::now();
  stream::PipelineConfig pconfig;
  pconfig.num_shards = shards;
  pconfig.num_producers = producers;
  stream::StreamPipeline pipeline(study.dictionary(), study.registry(),
                                  pconfig);
  if (producers <= 1) {
    stream::VectorSource source(workload);
    pipeline.run(source);
  } else {
    std::vector<std::vector<routing::FeedUpdate>> parts(producers);
    for (const auto& u : workload) {
      parts[platform_index(u.platform) % producers].push_back(u);
    }
    pipeline.start();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&pipeline, &parts, p] {
        auto& producer = pipeline.producer(p);
        for (const auto& u : parts[p]) producer.push(u);
        producer.flush();
      });
    }
    for (auto& t : threads) t.join();
  }
  pipeline.finish(end_time);
  double secs = seconds_since(t0);
  *events_identical = pipeline.store().events() == reference;
  return workload.size() / secs;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool with_fabric = false;
  std::size_t mpmc_producers = 3;
  std::string out_path = "BENCH_stream.json";
  std::string segments_dir = "BENCH_segments";
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--fabric") == 0) {
      with_fabric = true;
    } else if (std::strcmp(argv[i], "--producers") == 0 && i + 1 < argc) {
      mpmc_producers = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (mpmc_producers == 0 || mpmc_producers > kNumPlatforms) {
        std::fprintf(stderr, "--producers must be 1..%zu\n", kNumPlatforms);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--segments-out") == 0 && i + 1 < argc) {
      segments_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_stream [--smoke] [--fabric] [--producers <P>] "
                   "[--out <path>] [--segments-out <dir>] "
                   "[--metrics-out <path>]\n");
      return 2;
    }
  }

  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 15);
  config.workload.intensity_scale = smoke ? 0.02 : 0.05;
  config.table_dump_episodes = 0;

  std::printf("building study substrates + replay workload...\n");
  core::Study study(config);
  std::vector<routing::FeedUpdate> updates = study.replay_updates();
  // Replicate the stream a few times so per-run wall time is measurable
  // and per-update setup cost amortizes away.
  std::vector<routing::FeedUpdate> workload;
  const int kReplicas = smoke ? 2 : 4;
  workload.reserve(updates.size() * kReplicas);
  for (int r = 0; r < kReplicas; ++r) {
    for (const auto& u : updates) {
      workload.push_back(u);
      workload.back().update.time += static_cast<util::SimTime>(r) * util::kDay * 20;
    }
  }
  std::printf("workload: %zu updates (%zu unique), hardware threads: %u\n\n",
              workload.size(), updates.size(),
              std::thread::hardware_concurrency());

  // Sequential baseline.
  auto t0 = std::chrono::steady_clock::now();
  core::InferenceEngine engine(study.dictionary(), study.registry());
  for (const auto& u : workload) engine.process(u.platform, u.update);
  engine.finish(config.window_end);
  double base_secs = seconds_since(t0);
  double base_rate = workload.size() / base_secs;
  std::vector<core::PeerEvent> reference = engine.events();
  core::canonical_sort(reference);
  std::printf("  %-26s %10.0f updates/sec   (%zu events)\n",
              "sequential engine", base_rate, reference.size());

  const stream::PipelineConfig defaults;
  std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  std::vector<ShardResult> results;
  bool all_equivalent = true;
  double one_shard_rate = 0.0;
  double best_multi_rate = 0.0;
  for (std::size_t shards : shard_counts) {
    bool equivalent = false;
    double rate = run_pipeline(study, workload, shards, /*producers=*/1,
                               config.window_end, reference, &equivalent);
    all_equivalent = all_equivalent && equivalent;
    results.push_back(ShardResult{.shards = shards,
                                  .producers = 1,
                                  .rate = rate,
                                  .speedup_vs_sequential = rate / base_rate,
                                  .events_identical = equivalent});
    std::printf("  pipeline %zu shard%-3s       %10.0f updates/sec   %.2fx vs "
                "sequential  [%s]\n",
                shards, shards == 1 ? "" : "s", rate, rate / base_rate,
                equivalent ? "events identical" : "EVENT MISMATCH");
    if (shards == 1) one_shard_rate = rate;
    if (shards > 1 && rate > best_multi_rate) best_multi_rate = rate;
  }

  // MPMC row: several producer threads (one per collector platform)
  // feeding a 4-shard pipeline concurrently.
  {
    bool equivalent = false;
    double rate = run_pipeline(study, workload, /*shards=*/4, mpmc_producers,
                               config.window_end, reference, &equivalent);
    all_equivalent = all_equivalent && equivalent;
    results.push_back(ShardResult{.shards = 4,
                                  .producers = mpmc_producers,
                                  .rate = rate,
                                  .speedup_vs_sequential = rate / base_rate,
                                  .events_identical = equivalent});
    std::printf("  pipeline 4 shards x %zu prod %10.0f updates/sec   %.2fx vs "
                "sequential  [%s]\n",
                mpmc_producers, rate, rate / base_rate,
                equivalent ? "events identical" : "EVENT MISMATCH");
  }

  std::printf("\nmulti-shard best vs 1-shard pipeline: %.2fx\n",
              one_shard_rate > 0 ? best_multi_rate / one_shard_rate : 0.0);

  // ---- zero-allocation routing assertion (checkpointing enabled) -----
  // Warm a full AnalysisSession — spill AND the checkpoint plane wired,
  // with cadence cuts landing mid-stream — until the producer-side
  // routing path reaches steady state, then count producer-thread
  // allocations while routing single-announced-prefix sub-updates.
  // The zero-copy contract: none.  Spill chunk copies happen on the
  // draining worker threads and checkpoint cuts happen at a worker
  // rendezvous driven by the coordinator thread, so neither
  // persistence nor the recovery plane may add a single allocation to
  // the producer's routing path — the assertion proves it, with real
  // cuts observed during the run.
  double allocs_per_subupdate = 0.0;
  double checkpoint_ns_per_event = 0.0, recover_ms = 0.0;
  std::string metrics_prom;  // Prometheus dump of the instrumented run
  std::uint64_t telemetry_batches = 0;
  std::uint64_t cadence_checkpoints = 0;
  {
    std::filesystem::remove_all(segments_dir);
    api::SessionConfig sconfig;
    sconfig.mode = api::SessionConfig::Mode::kLiveFeed;
    sconfig.study = config;
    sconfig.persist_dir = segments_dir;
    sconfig.checkpoint_every = 150000;  // several cuts land mid-run
    api::AnalysisSession session(sconfig);
    session.start();
    // Rich engine state first — the real study stream — so the
    // checkpoint cuts below serialize representative open-state
    // tables, not a one-event toy.
    std::uint64_t total_pushed = 0;
    for (const auto& u : updates) {
      session.push(u);
      ++total_pushed;
    }
    routing::FeedUpdate probe;
    probe.platform = routing::Platform::kRis;
    probe.update.time = config.window_start;
    probe.update.peer_ip = *net::IpAddr::parse("198.51.100.9");
    probe.update.peer_asn = 3356;
    probe.update.body.as_path = bgp::AsPath::of({3356, 3356, 1299, 2914, 64500});
    probe.update.body.communities.add(bgp::Community(3356, 120));
    probe.update.body.communities.add(bgp::Community(1299, 3000));
    probe.update.body.announced.push_back(*net::Prefix::parse("20.7.0.0/16"));
    // Warm until a full round adds zero producer-thread allocations
    // (the block pool is bounded by staging + queue capacity, so this
    // converges fast); afterwards every acquire recycles.
    const std::uint64_t kWarm = 100000, kMeasure = 200000;
    for (int round = 0; round < 10; ++round) {
      std::uint64_t round_before = t_alloc_count;
      for (std::uint64_t i = 0; i < kWarm; ++i) {
        probe.update.time += 1;
        session.push(probe);
      }
      total_pushed += kWarm;
      if (round > 0 && t_alloc_count == round_before) break;
    }
    std::uint64_t before = t_alloc_count;
    for (std::uint64_t i = 0; i < kMeasure; ++i) {
      probe.update.time += 1;
      session.push(probe);
    }
    total_pushed += kMeasure;
    std::uint64_t allocs = t_alloc_count - before;
    allocs_per_subupdate = static_cast<double>(allocs) / kMeasure;
    cadence_checkpoints = session.checkpoints_written();
    std::printf("routing allocations per announced-prefix sub-update: %.4f "
                "(%llu allocs / %llu routed, spill + checkpointing "
                "enabled, %llu cadence checkpoints)  [%s]\n",
                allocs_per_subupdate, static_cast<unsigned long long>(allocs),
                static_cast<unsigned long long>(kMeasure),
                static_cast<unsigned long long>(cadence_checkpoints),
                allocs == 0 ? "zero-copy OK" : "ALLOCATION REGRESSION");
    if (allocs != 0) all_equivalent = false;  // fail the run loudly
    if (cadence_checkpoints == 0) {
      // The assertion's claim is "zero-alloc WITH checkpointing"; a
      // run where no cut ever landed would quietly stop covering it.
      std::fprintf(stderr,
                   "CHECKPOINT MISS: no cadence checkpoint landed during "
                   "the zero-alloc run\n");
      all_equivalent = false;
    }

    // ---- recovery stages ----
    // checkpoint = wall time of one explicit checkpoint_now() cut
    // (worker rendezvous + open-state serialize + spill barrier +
    // fsync + rename), amortized over every update this run ingested;
    // recover = wall-clock to construct a recover=true session on the
    // resulting directory (newest valid checkpoint + segment-log
    // truncation + disk merge + open-state restore).  The recovered
    // session must reproduce the clean session's event set exactly.
    session.flush();
    const int kCuts = 5;
    int cuts_ok = 0;
    auto c0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kCuts; ++i) cuts_ok += session.checkpoint_now() ? 1 : 0;
    double cut_secs = seconds_since(c0) / kCuts;
    checkpoint_ns_per_event =
        cut_secs * 1e9 / static_cast<double>(total_pushed);
    if (cuts_ok != kCuts) {
      std::fprintf(stderr, "CHECKPOINT FAILURE: %d of %d explicit cuts "
                   "succeeded\n", cuts_ok, kCuts);
      all_equivalent = false;
    }
    session.close(config.window_end);
    std::vector<core::PeerEvent> clean = session.events();

    sconfig.recover = true;
    auto r0 = std::chrono::steady_clock::now();
    api::AnalysisSession recovered(sconfig);
    recover_ms = seconds_since(r0) * 1e3;
    bool recovery_ok = recovered.recovered();
    recovered.start();
    recovered.close(config.window_end);
    recovery_ok = recovery_ok && recovered.events() == clean;
    std::printf("recovery: checkpoint cut %.2f ms (%.3f ns/event over %llu "
                "updates), recover %.1f ms (%zu events)  [%s]\n",
                cut_secs * 1e3, checkpoint_ns_per_event,
                static_cast<unsigned long long>(total_pushed), recover_ms,
                clean.size(),
                recovery_ok ? "recovered identical" : "RECOVERY MISMATCH");
    if (!recovery_ok) all_equivalent = false;

    // Telemetry is default-on (the session owns the registry every
    // layer registers into), so the zero count above was measured WITH
    // the instrumented hot path.  Prove the instruments actually
    // recorded — an empty batch histogram would mean the assertion
    // silently stopped covering the telemetry layer.
    telemetry::MetricsRegistry::Snapshot tsnap =
        session.telemetry().snapshot();
    const auto* batch_metric = tsnap.find("stream.worker.batch_ns");
    telemetry_batches = batch_metric ? batch_metric->hist.count : 0;
    if (telemetry_batches == 0) {
      std::fprintf(stderr,
                   "TELEMETRY MISS: stream.worker.batch_ns recorded nothing "
                   "during the zero-alloc run\n");
      all_equivalent = false;
    }
    std::printf("telemetry: %llu worker batches recorded, %.0f sub-updates "
                "counted by the registry\n",
                static_cast<unsigned long long>(telemetry_batches),
                tsnap.value_or("stream.shard.processed"));
    metrics_prom = telemetry::to_prometheus(tsnap);
  }

  // ---- per-stage breakdown -------------------------------------------
  // Isolated costs of the three data-plane stages, so a scaling
  // regression in the headline number is attributable.
  double route_ns = 0, queue_ns = 0, drain_ns = 0;
  {
    // Stage 1: route = cached block acquire + one update copy + shard
    // hash + ref emit, with the consumer-side batched recycle.
    stream::BlockPool pool;
    stream::ShardRouter router(4, pool);
    std::vector<stream::UpdateBlock*> to_recycle;
    to_recycle.reserve(defaults.batch_size);
    std::uint64_t subs = 0;
    auto s0 = std::chrono::steady_clock::now();
    for (const auto& u : workload) {
      router.route(u, [&](std::size_t, stream::SubUpdateRef ref) {
        ++subs;
        if (stream::BlockPool::unref(ref.block)) to_recycle.push_back(ref.block);
        if (to_recycle.size() >= defaults.batch_size) {
          pool.recycle_batch(to_recycle);
          to_recycle.clear();
        }
      });
    }
    route_ns = subs ? seconds_since(s0) * 1e9 / static_cast<double>(subs) : 0;

    // Stage 2: queue transfer of 16-byte refs, batched both sides.
    stream::SpscQueue<stream::SubUpdateRef> queue(defaults.queue_capacity);
    std::vector<stream::SubUpdateRef> batch_in(defaults.batch_size);
    std::vector<stream::SubUpdateRef> batch_out;
    batch_out.reserve(defaults.batch_size);
    const std::uint64_t kQueueOps = 4 << 20;
    s0 = std::chrono::steady_clock::now();
    for (std::uint64_t done = 0; done < kQueueOps;
         done += defaults.batch_size) {
      queue.push_batch(batch_in);
      batch_out.clear();
      queue.pop_batch(batch_out, defaults.batch_size);
    }
    queue_ns = seconds_since(s0) * 1e9 / static_cast<double>(kQueueOps);

    // Stage 3: store drain = sealed-chunk handoff into a lane.
    stream::EventStore store(4);
    std::vector<core::PeerEvent> chunk_template(256);
    const std::uint64_t kChunks = 2048;
    double accum = 0;
    for (std::uint64_t i = 0; i < kChunks; ++i) {
      auto chunk = chunk_template;
      auto c0 = std::chrono::steady_clock::now();
      store.ingest_chunk(i % 4, std::move(chunk));
      accum += seconds_since(c0);
    }
    drain_ns = accum * 1e9 / static_cast<double>(kChunks * 256);
    std::printf("stage breakdown: route %.1f ns/sub-update, queue %.1f "
                "ns/ref, drain %.2f ns/event\n",
                route_ns, queue_ns, drain_ns);
  }

  // ---- AnalysisSession consumer-surface stages ------------------------
  // query = lane-consistent EventQuery scan over a populated store;
  // sink_dispatch = producer-side cost of the subscription layer (chunk
  // copy into the bounded dispatch queue), the delta a registered sink
  // adds on top of the bare drain above.  With NO sinks the dispatch
  // layer is a single null-listener branch per sealed chunk — the
  // zero-allocation assertion above already ran without sinks, so any
  // hot-path regression from the subscription layer fails this bench.
  double query_ns = 0, sink_dispatch_ns = 0;
  {
    const std::size_t kEvents = 1 << 17;
    const std::size_t kChunkLen = 256;
    stream::EventStore store(4);
    std::vector<core::PeerEvent> chunk(kChunkLen);
    for (std::size_t done = 0; done < kEvents; done += kChunkLen) {
      for (std::size_t i = 0; i < kChunkLen; ++i) {
        chunk[i].start = static_cast<util::SimTime>(done + i);
        chunk[i].end = chunk[i].start + 50;
      }
      store.ingest_chunk(done / kChunkLen, std::vector(chunk));
    }
    api::EventQuery query;
    query.between(static_cast<util::SimTime>(kEvents / 4),
                  static_cast<util::SimTime>(3 * kEvents / 4));
    const int kQueryReps = 20;
    auto s0 = std::chrono::steady_clock::now();
    std::size_t matched = 0;
    for (int rep = 0; rep < kQueryReps; ++rep) {
      matched += store.count(
          [&query](const core::PeerEvent& e) { return query.matches(e); });
    }
    query_ns = seconds_since(s0) * 1e9 /
               static_cast<double>(kQueryReps * kEvents);

    // Dispatch: same sealed-chunk ingest as the drain stage, with a
    // listener feeding a running SinkDispatcher (one no-op sink).
    class NullSink : public api::EventSink {} sink;
    api::SinkDispatcher dispatcher({&sink}, /*grouper=*/nullptr,
                                   /*capacity_chunks=*/256,
                                   /*snapshot_fn=*/{},
                                   /*snapshot_every_events=*/0);
    dispatcher.start();
    stream::EventStore dispatch_store(4);
    dispatch_store.set_chunk_listener(
        [&dispatcher](std::size_t, std::vector<core::PeerEvent> events) {
          dispatcher.submit(std::move(events));
        });
    const std::uint64_t kChunks = 2048;
    double accum = 0;
    for (std::uint64_t i = 0; i < kChunks; ++i) {
      auto c = chunk;
      auto c0 = std::chrono::steady_clock::now();
      dispatch_store.ingest_chunk(i % 4, std::move(c));
      accum += seconds_since(c0);
    }
    dispatcher.stop();
    sink_dispatch_ns = accum * 1e9 / static_cast<double>(kChunks * kChunkLen);
    std::printf("consumer surface: query %.2f ns/event scanned (%zu matches), "
                "sink dispatch %.2f ns/event (vs %.2f ns/event bare drain)\n",
                query_ns, matched / static_cast<std::size_t>(kQueryReps),
                sink_dispatch_ns, drain_ns);
  }

  // ---- persistence stages --------------------------------------------
  // spill = sealed-chunk ingest with the segment-log spill hook wired
  // (chunk copy + bounded-queue handoff + writer-thread append +
  // seal), timed end to end until everything is durably on disk — the
  // full producer-visible + drain cost of persistence per event.
  // reopen_query = SegmentSet::open + an index-seeking half-range
  // window query over the reopened log, per event on disk.  The
  // segment directory is left behind for the CI artifact.
  double spill_ns = 0, reopen_query_ns = 0;
  std::uint64_t persisted_events = 0, persisted_bytes = 0, segment_files = 0;
  {
    std::filesystem::remove_all(segments_dir);
    storage::SpillConfig spill_config;
    spill_config.dir = segments_dir;
    spill_config.segment.max_segment_bytes = 1 << 20;
    auto spill = storage::SpillWriter::open(spill_config);
    if (!spill) {
      std::fprintf(stderr, "cannot open %s for spill\n", segments_dir.c_str());
      return 1;
    }
    stream::EventStore store(4);
    store.set_spill_listener(
        [&spill](std::size_t, std::vector<core::PeerEvent> chunk) {
          spill->submit(std::move(chunk));
        });
    const std::size_t kChunkLen = 256;
    const std::uint64_t kChunks = smoke ? 512 : 2048;
    const std::uint64_t kEvents = kChunks * kChunkLen;
    std::vector<core::PeerEvent> chunk(kChunkLen);
    auto s0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kChunks; ++i) {
      for (std::size_t j = 0; j < kChunkLen; ++j) {
        chunk[j].start = static_cast<util::SimTime>(i * kChunkLen + j);
        chunk[j].end = chunk[j].start + 50;
      }
      store.ingest_chunk(i % 4, std::vector(chunk));
    }
    spill->stop();  // queue drained, active segment sealed
    spill_ns = seconds_since(s0) * 1e9 / static_cast<double>(kEvents);
    persisted_events = spill->events_spilled();
    persisted_bytes = spill->bytes_on_disk();
    segment_files = spill->segments_sealed();
    if (persisted_events != kEvents || spill->io_error()) {
      std::fprintf(stderr, "SPILL LOSS: %llu of %llu events persisted\n",
                   static_cast<unsigned long long>(persisted_events),
                   static_cast<unsigned long long>(kEvents));
      all_equivalent = false;
    }

    auto set = storage::SegmentSet::open(segments_dir);
    if (!set || set->size() != kEvents) {
      std::fprintf(stderr, "REOPEN MISMATCH: %zu of %llu events on disk\n",
                   set ? set->size() : 0,
                   static_cast<unsigned long long>(kEvents));
      all_equivalent = false;
    } else {
      const int kReps = 20;
      std::size_t matched = 0;
      s0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) {
        matched += set
                       ->events_in(static_cast<util::SimTime>(kEvents / 4),
                                   static_cast<util::SimTime>(3 * kEvents / 4))
                       .size();
      }
      reopen_query_ns =
          seconds_since(s0) * 1e9 / static_cast<double>(kReps * kEvents);
      std::printf("persistence: spill %.2f ns/event (%llu events, %llu "
                  "segments, %.1f MiB), reopen query %.2f ns/event (%zu "
                  "matches)\n",
                  spill_ns, static_cast<unsigned long long>(persisted_events),
                  static_cast<unsigned long long>(segment_files),
                  static_cast<double>(persisted_bytes) / (1024.0 * 1024.0),
                  reopen_query_ns,
                  matched / static_cast<std::size_t>(kReps));
    }
  }

  // ---- fabric stages (--fabric) --------------------------------------
  // fabric_append = per-update cost of the full distributed append
  // path (split + batch + frame + loopback TCP + server-side push +
  // bounded-window ack) measured against two in-process ShardServers;
  // rebalance = wall clock of one live slot migration between them
  // (drain + drained checkpoint + directory ship + recover + route
  // flip) with the slot fully populated.  The fabric session's event
  // set must match an in-process session over the same stream — the
  // distributed plane is only worth benching if it is correct.
  double fabric_append_ns = 0.0, rebalance_ms = 0.0;
  double detection_latency_p99_ms = 0.0;
  if (with_fabric) {
    api::SessionConfig ref_config;
    ref_config.mode = api::SessionConfig::Mode::kLiveFeed;
    ref_config.study = config;
    ref_config.num_shards = 4;
    api::AnalysisSession ref_session(ref_config);
    ref_session.start();
    for (const auto& u : updates) ref_session.push(u);
    ref_session.close(config.window_end);
    std::vector<core::PeerEvent> ref_events = ref_session.events();

    const std::string fabric_dir = "BENCH_fabric";
    std::filesystem::remove_all(fabric_dir);
    fabric::ShardServerConfig server_config;
    server_config.study = config;
    server_config.dir = fabric_dir + "/srv0";
    fabric::ShardServer server0(server_config);
    server_config.dir = fabric_dir + "/srv1";
    fabric::ShardServer server1(server_config);

    api::SessionConfig fconfig;
    fconfig.mode = api::SessionConfig::Mode::kLiveFeed;
    fconfig.study = config;
    fconfig.num_shards = 4;  // the global slot count in fabric mode
    fconfig.fabric.endpoints = {{"127.0.0.1", server0.port()},
                                {"127.0.0.1", server1.port()}};
    api::AnalysisSession fabric_session(fconfig);
    fabric_session.start();
    auto f0 = std::chrono::steady_clock::now();
    for (const auto& u : updates) fabric_session.push(u);
    fabric_session.drain();
    fabric_append_ns =
        seconds_since(f0) * 1e9 / static_cast<double>(updates.size());

    // Migrate slot 0 onto whichever server does not own it, with every
    // update already applied — the worst-case (fully populated) move.
    fabric::FabricRouter* router = fabric_session.fabric();
    std::size_t target = router->endpoint_of(0) == 0 ? 1 : 0;
    auto m0 = std::chrono::steady_clock::now();
    bool migrated = router->migrate(0, target);
    rebalance_ms = seconds_since(m0) * 1e3;

    fabric_session.close(config.window_end);
    bool fabric_identical = migrated && fabric_session.events() == ref_events;
    // End-to-end detection latency THROUGH THE FABRIC: each update was
    // wall-clock-stamped at push(), carried across the wire in the v2
    // sub-update trailer, and the slot sessions recorded ingest→close
    // into their e2e.detect_latency_ns histograms.  fleet_telemetry()
    // folds those bucket-exactly across every slot of both servers.
    telemetry::FleetTelemetry fleet =
        fabric_session.fabric()->fleet_telemetry();
    if (const telemetry::MetricsRegistry::Metric* m =
            fleet.folded.find("e2e.detect_latency_ns");
        m != nullptr && m->hist.count > 0) {
      detection_latency_p99_ms = m->hist.percentile(0.99) / 1e6;
    }
    std::printf("fabric: append %.1f ns/event over loopback (%zu updates, "
                "4 slots, 2 servers), rebalance slot 0 -> server %zu "
                "%.2f ms, detect p99 %.3f ms end-to-end  [%s]\n",
                fabric_append_ns, updates.size(), target, rebalance_ms,
                detection_latency_p99_ms,
                fabric_identical ? "events identical" : "FABRIC MISMATCH");
    if (!fabric_identical) all_equivalent = false;
    server0.stop();
    server1.stop();
    std::filesystem::remove_all(fabric_dir);
  }

  // The stage breakdown flows through the telemetry registry — the
  // same snapshot/export path AnalysisSession::telemetry() consumers
  // use — so the BENCH JSON is derived from registry state, not a
  // parallel set of locals.  The exporter preserves the historical key
  // names (the `stage.` prefix is stripped).
  telemetry::MetricsRegistry bench_registry;
  bench_registry.describe("stage.route_ns_per_subupdate",
                          "Shard routing cost per sub-update (ns)");
  bench_registry.describe("stage.queue_ns_per_ref",
                          "SPSC queue transfer cost per update ref (ns)");
  bench_registry.describe("stage.drain_ns_per_event",
                          "Shard drain + store ingest cost per event (ns)");
  bench_registry.describe("stage.query_ns_per_event",
                          "Live lane-consistent query cost per event (ns)");
  bench_registry.describe("stage.sink_dispatch_ns_per_event",
                          "Sink dispatcher delivery cost per event (ns)");
  bench_registry.describe("stage.spill_ns_per_event",
                          "Segment-log spill cost per event (ns)");
  bench_registry.describe("stage.reopen_query_ns_per_event",
                          "kReopen archive query cost per event (ns)");
  bench_registry.describe("stage.checkpoint_ns_per_event",
                          "Cadence checkpoint amortized cost per event (ns)");
  bench_registry.describe("stage.recover_ms",
                          "Checkpoint restore wall time (ms)");
  bench_registry.describe("stage.fabric_append_ns_per_event",
                          "Distributed APPEND path cost per update (ns)");
  bench_registry.describe("stage.rebalance_ms",
                          "Live slot migration wall time (ms)");
  bench_registry.describe(
      "stage.detection_latency_p99_ms",
      "p99 end-to-end detection latency through the fabric: producer-edge "
      "ingest stamp to engine event close, folded across all slots (ms)");
  bench_registry.gauge("stage.route_ns_per_subupdate").set(route_ns);
  bench_registry.gauge("stage.queue_ns_per_ref").set(queue_ns);
  bench_registry.gauge("stage.drain_ns_per_event").set(drain_ns);
  bench_registry.gauge("stage.query_ns_per_event").set(query_ns);
  bench_registry.gauge("stage.sink_dispatch_ns_per_event")
      .set(sink_dispatch_ns);
  bench_registry.gauge("stage.spill_ns_per_event").set(spill_ns);
  bench_registry.gauge("stage.reopen_query_ns_per_event").set(reopen_query_ns);
  bench_registry.gauge("stage.checkpoint_ns_per_event")
      .set(checkpoint_ns_per_event);
  bench_registry.gauge("stage.recover_ms").set(recover_ms);
  if (with_fabric) {
    bench_registry.gauge("stage.fabric_append_ns_per_event")
        .set(fabric_append_ns);
    bench_registry.gauge("stage.rebalance_ms").set(rebalance_ms);
    bench_registry.gauge("stage.detection_latency_p99_ms")
        .set(detection_latency_p99_ms);
  }
  telemetry::MetricsRegistry::Snapshot stage_snap = bench_registry.snapshot();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"perf_stream\",\n");
  std::fprintf(out, "  \"meta\": %s,\n", bench::meta_json().c_str());
  std::fprintf(out, "  \"workload_updates\": %zu,\n", workload.size());
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"batch_size\": %zu,\n", defaults.batch_size);
  std::fprintf(out, "  \"queue_capacity\": %zu,\n", defaults.queue_capacity);
  std::fprintf(out, "  \"zero_copy\": %s,\n",
               defaults.zero_copy ? "true" : "false");
  std::fprintf(out, "  \"routing_allocs_per_subupdate\": %.4f,\n",
               allocs_per_subupdate);
  std::fprintf(out, "  \"telemetry_batches_recorded\": %llu,\n",
               static_cast<unsigned long long>(telemetry_batches));
  std::fprintf(out, "  \"cadence_checkpoints\": %llu,\n",
               static_cast<unsigned long long>(cadence_checkpoints));
  std::fprintf(out, "  \"stage_breakdown\": %s,\n",
               telemetry::to_json_object(stage_snap, "stage.").c_str());
  std::fprintf(out,
               "  \"persistence\": {\"events\": %llu, \"segments\": %llu, "
               "\"bytes\": %llu},\n",
               static_cast<unsigned long long>(persisted_events),
               static_cast<unsigned long long>(segment_files),
               static_cast<unsigned long long>(persisted_bytes));
  std::fprintf(out, "  \"sequential_updates_per_sec\": %.0f,\n", base_rate);
  std::fprintf(out, "  \"events\": %zu,\n", reference.size());
  std::fprintf(out, "  \"shard_scaling\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"shards\": %zu, \"producers\": %zu, "
                 "\"updates_per_sec\": %.0f, "
                 "\"speedup_vs_sequential\": %.2f, \"events_identical\": %s}%s\n",
                 r.shards, r.producers, r.rate, r.speedup_vs_sequential,
                 r.events_identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  // Optional Prometheus snapshot: the instrumented zero-alloc run's
  // registry (pipeline/queue/spill instruments) plus the stage gauges
  // above — what CI uploads as an artifact.
  if (!metrics_out.empty()) {
    std::FILE* prom = std::fopen(metrics_out.c_str(), "w");
    if (!prom) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fputs(metrics_prom.c_str(), prom);
    std::fputs(telemetry::to_prometheus(stage_snap).c_str(), prom);
    std::fclose(prom);
    std::printf("wrote %s\n", metrics_out.c_str());
  }

  // The numbers are meaningless if the sharded pipeline diverges from
  // the sequential engine or the zero-copy contract regressed — fail
  // loudly (CI runs this as a smoke test).
  return all_equivalent ? 0 : 1;
}
