// Streaming-pipeline throughput: updates/sec through the sharded live
// ingestion path (source -> shard router -> SPSC queues -> engine
// shards -> event store) at 1, 2, 4 and 8 shards, against the
// sequential single-engine replay as baseline.
//
// The §4.2 monitoring problem is embarrassingly parallel in the
// (peer, prefix) key — this bench shows the shard fan-out turning that
// into wall-clock throughput on multi-core hardware (on a single
// hardware thread the shard counts collapse to roughly the baseline,
// minus queue overhead).  Every configuration is checked against the
// sequential event set before its numbers are reported.
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/study.h"
#include "stream/pipeline.h"
#include "stream/source.h"

using namespace bgpbh;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 15);
  config.workload.intensity_scale = 0.05;
  config.table_dump_episodes = 0;

  std::printf("building study substrates + replay workload...\n");
  core::Study study(config);
  std::vector<routing::FeedUpdate> updates = study.replay_updates();
  // Replicate the stream a few times so per-run wall time is measurable
  // and per-update setup cost amortizes away.
  std::vector<routing::FeedUpdate> workload;
  constexpr int kReplicas = 4;
  workload.reserve(updates.size() * kReplicas);
  for (int r = 0; r < kReplicas; ++r) {
    for (const auto& u : updates) {
      workload.push_back(u);
      workload.back().update.time += static_cast<util::SimTime>(r) * util::kDay * 20;
    }
  }
  std::printf("workload: %zu updates (%zu unique), hardware threads: %u\n\n",
              workload.size(), updates.size(),
              std::thread::hardware_concurrency());

  // Sequential baseline.
  auto t0 = std::chrono::steady_clock::now();
  core::InferenceEngine engine(study.dictionary(), study.registry());
  for (const auto& u : workload) engine.process(u.platform, u.update);
  engine.finish(config.window_end);
  double base_secs = seconds_since(t0);
  std::vector<core::PeerEvent> reference = engine.events();
  core::canonical_sort(reference);
  std::printf("  %-22s %10.0f updates/sec   (%zu events)\n",
              "sequential engine", workload.size() / base_secs,
              reference.size());

  double one_shard_rate = 0.0;
  double best_multi_rate = 0.0;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    t0 = std::chrono::steady_clock::now();
    stream::PipelineConfig pconfig;
    pconfig.num_shards = shards;
    stream::StreamPipeline pipeline(study.dictionary(), study.registry(),
                                    pconfig);
    stream::VectorSource source(workload);
    pipeline.run(source);
    pipeline.finish(config.window_end);
    double secs = seconds_since(t0);
    double rate = workload.size() / secs;

    bool equivalent = pipeline.store().events() == reference;
    std::printf("  pipeline %zu shard%-3s   %10.0f updates/sec   %.2fx vs "
                "sequential  [%s]\n",
                shards, shards == 1 ? "" : "s", rate, rate * base_secs / workload.size(),
                equivalent ? "events identical" : "EVENT MISMATCH");
    if (shards == 1) one_shard_rate = rate;
    if (shards > 1 && rate > best_multi_rate) best_multi_rate = rate;
  }

  std::printf("\nmulti-shard best vs 1-shard pipeline: %.2fx\n",
              one_shard_rate > 0 ? best_multi_rate / one_shard_rate : 0.0);
  return 0;
}
