// Streaming-pipeline throughput: updates/sec through the sharded live
// ingestion path (source -> shard router -> batched SPSC queues ->
// engine shards -> event store) at 1, 2, 4 and 8 shards, against the
// sequential single-engine replay as baseline.
//
// The §4.2 monitoring problem is embarrassingly parallel in the
// (peer, prefix) key — this bench shows the shard fan-out turning that
// into wall-clock throughput on multi-core hardware (on a single
// hardware thread the shard counts collapse to roughly the baseline,
// minus queue overhead).  Every configuration is checked against the
// sequential event set before its numbers are reported, and all
// results are written to BENCH_stream.json — the perf trajectory every
// PR is measured against.
//
//   perf_stream [--smoke] [--out <path>]
//
// --smoke shrinks the workload and runs only 1 and 4 shards (CI).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/study.h"
#include "stream/pipeline.h"
#include "stream/source.h"

using namespace bgpbh;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ShardResult {
  std::size_t shards = 0;
  double rate = 0;
  double speedup_vs_sequential = 0;
  bool events_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_stream.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_stream [--smoke] [--out <path>]\n");
      return 2;
    }
  }

  core::StudyConfig config;
  config.window_start = util::from_date(2017, 3, 1);
  config.window_end = util::from_date(2017, 3, 15);
  config.workload.intensity_scale = smoke ? 0.02 : 0.05;
  config.table_dump_episodes = 0;

  std::printf("building study substrates + replay workload...\n");
  core::Study study(config);
  std::vector<routing::FeedUpdate> updates = study.replay_updates();
  // Replicate the stream a few times so per-run wall time is measurable
  // and per-update setup cost amortizes away.
  std::vector<routing::FeedUpdate> workload;
  const int kReplicas = smoke ? 2 : 4;
  workload.reserve(updates.size() * kReplicas);
  for (int r = 0; r < kReplicas; ++r) {
    for (const auto& u : updates) {
      workload.push_back(u);
      workload.back().update.time += static_cast<util::SimTime>(r) * util::kDay * 20;
    }
  }
  std::printf("workload: %zu updates (%zu unique), hardware threads: %u\n\n",
              workload.size(), updates.size(),
              std::thread::hardware_concurrency());

  // Sequential baseline.
  auto t0 = std::chrono::steady_clock::now();
  core::InferenceEngine engine(study.dictionary(), study.registry());
  for (const auto& u : workload) engine.process(u.platform, u.update);
  engine.finish(config.window_end);
  double base_secs = seconds_since(t0);
  double base_rate = workload.size() / base_secs;
  std::vector<core::PeerEvent> reference = engine.events();
  core::canonical_sort(reference);
  std::printf("  %-22s %10.0f updates/sec   (%zu events)\n",
              "sequential engine", base_rate, reference.size());

  const stream::PipelineConfig defaults;
  std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  std::vector<ShardResult> results;
  bool all_equivalent = true;
  double one_shard_rate = 0.0;
  double best_multi_rate = 0.0;
  for (std::size_t shards : shard_counts) {
    t0 = std::chrono::steady_clock::now();
    stream::PipelineConfig pconfig;
    pconfig.num_shards = shards;
    stream::StreamPipeline pipeline(study.dictionary(), study.registry(),
                                    pconfig);
    stream::VectorSource source(workload);
    pipeline.run(source);
    pipeline.finish(config.window_end);
    double secs = seconds_since(t0);
    double rate = workload.size() / secs;

    bool equivalent = pipeline.store().events() == reference;
    all_equivalent = all_equivalent && equivalent;
    results.push_back(ShardResult{.shards = shards,
                                  .rate = rate,
                                  .speedup_vs_sequential = rate / base_rate,
                                  .events_identical = equivalent});
    std::printf("  pipeline %zu shard%-3s   %10.0f updates/sec   %.2fx vs "
                "sequential  [%s]\n",
                shards, shards == 1 ? "" : "s", rate, rate / base_rate,
                equivalent ? "events identical" : "EVENT MISMATCH");
    if (shards == 1) one_shard_rate = rate;
    if (shards > 1 && rate > best_multi_rate) best_multi_rate = rate;
  }

  std::printf("\nmulti-shard best vs 1-shard pipeline: %.2fx\n",
              one_shard_rate > 0 ? best_multi_rate / one_shard_rate : 0.0);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"perf_stream\",\n");
  std::fprintf(out, "  \"workload_updates\": %zu,\n", workload.size());
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"batch_size\": %zu,\n", defaults.batch_size);
  std::fprintf(out, "  \"queue_capacity\": %zu,\n", defaults.queue_capacity);
  std::fprintf(out, "  \"sequential_updates_per_sec\": %.0f,\n", base_rate);
  std::fprintf(out, "  \"events\": %zu,\n", reference.size());
  std::fprintf(out, "  \"shard_scaling\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"shards\": %zu, \"updates_per_sec\": %.0f, "
                 "\"speedup_vs_sequential\": %.2f, \"events_identical\": %s}%s\n",
                 r.shards, r.rate, r.speedup_vs_sequential,
                 r.events_identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  // The numbers are meaningless if the sharded pipeline diverges from
  // the sequential engine — fail loudly (CI runs this as a smoke test).
  return all_equivalent ? 0 : 1;
}
