// Table 4: blackhole visibility by provider network type
// (Aug 2016 - Mar 2017): providers, users, prefixes, direct-feed share.
#include "bench_common.h"

using namespace bgpbh;
using topology::NetworkType;

int main() {
  bench::header("Table 4 — blackhole visibility by provider network type",
                "Giotsas et al., IMC'17, Table 4");

  core::Study study(bench::focus_config());
  study.run();
  auto t0 = util::focus_start(), t1 = util::focus_end();
  auto table4 = study.table4(t0, t1);

  struct PaperRow {
    NetworkType type;
    double providers, users, prefixes, direct_pct;
  };
  const PaperRow paper[] = {
      {NetworkType::kTransitAccess, 184, 986, 80262, 28},
      {NetworkType::kIxp, 25, 673, 20824, 100},
      {NetworkType::kContent, 19, 90, 2428, 21},
      {NetworkType::kEnterprise, 5, 127, 4144, 20},
      {NetworkType::kEduResearchNfP, 5, 40, 1244, 20},
      {NetworkType::kUnknown, 4, 19, 882, 0},
  };

  stats::Table table({"Network type", "#Bh prov (paper)", "#Bh prov",
                      "#Bh users (paper)", "#Bh users", "#Bh pref (paper)",
                      "#Bh pref", "Direct (paper)", "Direct"});
  for (const auto& row : paper) {
    core::Study::TypeRow measured;
    auto it = table4.find(row.type);
    if (it != table4.end()) measured = it->second;
    table.add_row({topology::to_string(row.type), bench::num(row.providers),
                   std::to_string(measured.providers), bench::num(row.users),
                   std::to_string(measured.users),
                   stats::with_commas(static_cast<std::uint64_t>(row.prefixes)),
                   stats::with_commas(measured.prefixes),
                   bench::num(row.direct_pct, 0) + "%",
                   stats::pct(measured.direct_feed_fraction, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape checks:\n");
  const auto& ta = table4[NetworkType::kTransitAccess];
  const auto& ixp = table4[NetworkType::kIxp];
  std::size_t total_prefixes = 0;
  for (auto& [type, row] : table4) total_prefixes += row.prefixes;
  bench::compare("transit/access share of prefixes", "~90%",
                 stats::pct(static_cast<double>(ta.prefixes) /
                            static_cast<double>(total_prefixes), 0));
  bench::compare("IXPs are the 2nd largest provider group", "25 providers",
                 std::to_string(ixp.providers) + " providers");
  bench::compare("IXP user share (many members)",
                 "60% of users", stats::pct(static_cast<double>(ixp.users) /
                                            static_cast<double>(
                                                study.table3_all(t0, t1).users), 0));
  bench::compare("IXP direct feed", "100%",
                 stats::pct(ixp.direct_feed_fraction, 0));
  return 0;
}
