// Table 3: blackhole visibility per dataset (Aug 2016 - Mar 2017) —
// blackholing providers / users / prefixes, platform-unique counts and
// the share of providers with a direct BGP feed.
#include "bench_common.h"

using namespace bgpbh;
using routing::Platform;

namespace {
struct PaperRow {
  const char* source;
  double providers, unique_providers, users, unique_users, prefixes,
      unique_prefixes, direct_pct;
};
constexpr PaperRow kPaper[] = {
    {"CDN", 231, 111, 894, 94, 73400, 5908, 20.8},
    {"RIS", 113, 0, 739, 57, 24637, 6217, 4.42},
    {"RV", 116, 2, 729, 27, 24420, 417, 17.2},
    {"PCH", 119, 5, 831, 63, 74709, 7224, 43.6},
    {"ALL", 242, 118, 1112, 241, 88209, 19766, 33.05},
};
}  // namespace

int main() {
  bench::header("Table 3 — blackhole visibility per dataset (Aug'16-Mar'17)",
                "Giotsas et al., IMC'17, Table 3");

  core::Study study(bench::focus_config());
  study.run();

  auto t0 = util::focus_start();
  auto t1 = util::focus_end();
  auto per = study.table3(t0, t1);
  auto all = study.table3_all(t0, t1);

  stats::Table table({"Source", "#Bh providers", "#Unique prov", "#Bh users",
                      "#Unique users", "#Bh prefixes", "#Unique pfx",
                      "Direct feed"});
  auto add = [&table](const std::string& name, const core::Study::VisibilityRow& r) {
    table.add_row({name, std::to_string(r.providers),
                   std::to_string(r.unique_providers), std::to_string(r.users),
                   std::to_string(r.unique_users),
                   stats::with_commas(r.prefixes),
                   stats::with_commas(r.unique_prefixes),
                   stats::pct(r.direct_feed_fraction, 1)});
  };
  const Platform order[] = {Platform::kCdn, Platform::kRis,
                            Platform::kRouteViews, Platform::kPch};
  for (Platform p : order) add(routing::to_string(p), per[p]);
  add("ALL", all);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("paper's Table 3 for reference:\n");
  stats::Table ptable({"Source", "#Bh providers", "#Unique prov", "#Bh users",
                       "#Unique users", "#Bh prefixes", "#Unique pfx",
                       "Direct feed"});
  for (const auto& r : kPaper) {
    ptable.add_row({r.source, bench::num(r.providers),
                    bench::num(r.unique_providers), bench::num(r.users),
                    bench::num(r.unique_users),
                    stats::with_commas(static_cast<std::uint64_t>(r.prefixes)),
                    stats::with_commas(static_cast<std::uint64_t>(r.unique_prefixes)),
                    bench::num(r.direct_pct, 1) + "%"});
  }
  std::printf("%s\n", ptable.to_string().c_str());

  std::printf("shape checks:\n");
  bench::compare("CDN sees most providers", "yes",
                 per[Platform::kCdn].providers >= per[Platform::kRis].providers &&
                         per[Platform::kCdn].providers >=
                             per[Platform::kRouteViews].providers
                     ? "yes"
                     : "NO");
  bench::compare("CDN contributes most unique providers", "111 of 118",
                 std::to_string(per[Platform::kCdn].unique_providers) + " of " +
                     std::to_string(all.unique_providers));
  bench::compare("PCH direct-feed share is the highest", "43.6%",
                 stats::pct(per[Platform::kPch].direct_feed_fraction, 1));
  bench::compare("active providers of dictionary (79% of 307)", "242",
                 std::to_string(all.providers) + " of " +
                     std::to_string(study.dictionary().num_providers() +
                                    study.dictionary().num_ixps()));
  // 98% of blackholed IPv4 prefixes are host routes.
  std::set<net::Prefix> prefixes;
  for (const auto& e : study.events()) {
    if (e.prefix.is_v4()) prefixes.insert(e.prefix);
  }
  std::size_t hosts = 0;
  for (const auto& p : prefixes) hosts += p.is_host_route();
  bench::compare("/32 share of blackholed IPv4 prefixes", "98%",
                 stats::pct(static_cast<double>(hosts) /
                            static_cast<double>(prefixes.size()), 1));
  // IPv6 share (paper: 172 of 88,381 ~ 0.2%).
  std::set<net::Prefix> all_pfx;
  for (const auto& e : study.events()) all_pfx.insert(e.prefix);
  bench::compare("IPv6 share of blackholed prefixes", "~0.2%",
                 stats::pct(1.0 - static_cast<double>(prefixes.size()) /
                                      static_cast<double>(all_pfx.size()), 2));
  std::printf("\nscale note: measured prefix counts are ~%.0f%% of paper volume\n",
              bench::kIntensity * 100);
  return 0;
}
