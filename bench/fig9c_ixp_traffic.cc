// Fig 9c: one week of IXP switching-fabric traffic toward blackholed
// prefixes — volume dropped at the IXP (below the zero line) vs volume
// still forwarded (above), plus §10's passive findings: >50% dropped
// for successful /32s, 80% of residual from <10 members, ~1/3 of
// traffic-sending ASes drop, and 99.5% control-plane visibility of
// route-server blackholing events.
#include "bench_common.h"

#include "flows/ixp_traffic.h"

using namespace bgpbh;

int main() {
  bench::header("Fig 9c — traffic at an IXP toward blackholed prefixes",
                "Giotsas et al., IMC'17, Fig 9c + §10 passive");

  core::Study study(bench::march2017_config());
  study.run();

  // The "major European IXP": the largest blackholing IXP.
  const topology::Ixp* ixp = nullptr;
  for (const auto& candidate : study.graph().ixps()) {
    if (!candidate.offers_blackholing) continue;
    if (!ixp || candidate.members.size() > ixp->members.size()) ixp = &candidate;
  }
  if (!ixp) {
    std::printf("no blackholing IXP in topology\n");
    return 1;
  }
  std::printf("IXP under study: %s (%zu members, RS AS%u)\n\n", ixp->name.c_str(),
              ixp->members.size(), ixp->route_server_asn);

  // Episodes at this IXP during the focus week, preferring long-lived
  // ones (the paper tracks prefixes blackholed throughout the week).
  util::SimTime week_start = util::from_date(2017, 3, 20);
  std::vector<workload::Episode> episodes;
  for (const auto& t : study.ground_truth()) {
    if (std::find(t.episode.ixps.begin(), t.episode.ixps.end(), ixp->id) ==
        t.episode.ixps.end())
      continue;
    episodes.push_back(t.episode);
  }
  std::printf("episodes using this IXP's blackholing in March 2017: %zu\n\n",
              episodes.size());

  flows::IxpTrafficSim sim(study.graph(), study.propagation(),
                           flows::IxpTrafficConfig{});
  auto report = sim.simulate(ixp->id, episodes, week_start, 7);

  // Stacked plot per top prefix.
  std::size_t shown = 0;
  for (auto& [prefix, split] : report.per_prefix) {
    if (shown++ >= 3) break;
    std::printf("prefix %s\n", prefix.to_string().c_str());
    std::printf("%s", split.forwarded.ascii_plot("  forwarded (above zero)", {},
                                                 60, 6).c_str());
    std::printf("%s\n", split.blackholed.ascii_plot("  blackholed (below zero)",
                                                    {}, 60, 6).c_str());
  }

  std::printf("passive-measurement findings:\n");
  double max_prefix_drop = 0.0;
  for (auto& [prefix, split] : report.per_prefix) {
    double b = 0, f = 0;
    for (auto& [d, v] : split.blackholed.data()) b += v;
    for (auto& [d, v] : split.forwarded.data()) f += v;
    if (b + f > 0) max_prefix_drop = std::max(max_prefix_drop, b / (b + f));
  }
  bench::compare("max per-prefix drop share", ">50% for some /32s",
                 stats::pct(max_prefix_drop, 0));
  bench::compare("aggregate traffic dropped", "-",
                 stats::pct(report.drop_fraction(), 0));
  bench::compare("residual share of top-10 members", "80% from <10 members",
                 stats::pct(report.residual_share_of_top(10), 0),
                 util::strf("(%zu residual members)",
                            report.residual_member_count()).c_str());

  auto one_day = sim.analyze_one_day(ixp->id, episodes);
  bench::compare("ASes sending to blackholed /32s that drop >=1", "about 1/3",
                 stats::pct(one_day.fraction_dropping(), 0),
                 util::strf("(%zu of %zu senders)", one_day.senders_dropping,
                            one_day.senders).c_str());

  // Control-plane visibility validation: of ground-truth route-server
  // blackholing events at PCH-collector IXPs, how many were observed?
  std::size_t rs_events = 0, rs_visible = 0;
  for (const auto& t : study.ground_truth()) {
    bool at_pch_ixp = false;
    for (auto ix : t.activated_ixps) {
      const topology::Ixp* i = study.graph().find_ixp(ix);
      if (i && i->has_pch_collector) at_pch_ixp = true;
    }
    if (!at_pch_ixp) continue;
    ++rs_events;
    if (t.observed_updates > 0) ++rs_visible;
  }
  bench::compare("route-server event visibility", "99.5%",
                 rs_events ? stats::pct(static_cast<double>(rs_visible) /
                                        rs_events, 1)
                           : "n/a",
                 util::strf("(%zu events)", rs_events).c_str());

  // Misconfiguration cases: control-plane blackholing with no
  // data-plane reduction (the red region).
  std::size_t misconfig_observed = 0, misconfig_total = 0;
  for (const auto& t : study.ground_truth()) {
    if (t.episode.misconfig == routing::BlackholeAnnouncement::Misconfig::kNone)
      continue;
    ++misconfig_total;
    if (t.observed_updates > 0) ++misconfig_observed;
  }
  bench::compare("misconfigured blackholings observed",
                 "present (red region)",
                 std::to_string(misconfig_observed) + " of " +
                     std::to_string(misconfig_total),
                 "(wrong community / invalid next hop / missing IRR)");

  // IPFIX export round-trip over the sampled flows.
  flows::IpfixExporter exporter(ixp->id);
  auto messages = exporter.export_batches(sim.sampled_flows(), week_start);
  std::size_t decoded = 0;
  for (const auto& msg : messages) {
    auto batch = flows::decode_message(msg);
    if (batch) decoded += batch->size();
  }
  bench::compare("IPFIX records exported+decoded (1:10K sampling)", "-",
                 stats::with_commas(decoded));
  return 0;
}
