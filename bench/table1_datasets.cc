// Table 1: Overview of the BGP datasets (March 2017) — IP peers, AS
// peers, unique AS peers, prefixes, unique prefixes per platform.
#include "bench_common.h"

using namespace bgpbh;
using routing::Platform;

namespace {
struct PaperRow {
  const char* source;
  double ip_peers, as_peers, unique_as, prefixes, unique_prefixes;
};
// The paper's Table 1 values.
constexpr PaperRow kPaper[] = {
    {"RIS", 425, 313, 77, 712176, 11876},
    {"RV", 269, 197, 42, 784700, 87536},
    {"PCH", 8897, 1721, 1175, 765005, 38847},
    {"CDN", 3349, 1282, 911, 1840321, 1055196},
    {"Total", 12940, 2798, 2205, 2012404, 1193455},
};
}  // namespace

int main() {
  bench::header("Table 1 — BGP dataset overview (March 2017)",
                "Giotsas et al., IMC'17, Table 1");

  core::Study study(bench::march2017_config());
  auto stats = study.fleet().table1_stats(study.graph());
  auto total = study.fleet().table1_total(study.graph());

  stats::Table table({"Source", "#IP peers", "#AS peers", "#Unique AS",
                      "#Prefixes", "#Unique pfx"});
  auto add = [&table](const std::string& name, const routing::DatasetStats& s) {
    table.add_row({name, stats::with_commas(s.ip_peers),
                   stats::with_commas(s.as_peers),
                   stats::with_commas(s.unique_as_peers),
                   stats::with_commas(s.prefixes),
                   stats::with_commas(s.unique_prefixes)});
  };
  for (Platform p : routing::kAllPlatforms) add(routing::to_string(p), stats[p]);
  add("Total", total);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape checks vs paper (ratios, not absolutes):\n");
  auto ratio = [](double a, double b) { return b == 0 ? 0.0 : a / b; };
  bench::compare(
      "CDN prefixes / RIS prefixes",
      bench::num(ratio(kPaper[3].prefixes, kPaper[0].prefixes), 2),
      bench::num(ratio(static_cast<double>(stats[Platform::kCdn].prefixes),
                       static_cast<double>(stats[Platform::kRis].prefixes)),
                 2),
      "(CDN sees multiples more via internal feeds)");
  bench::compare(
      "CDN unique pfx / total unique pfx",
      bench::num(ratio(kPaper[3].unique_prefixes, kPaper[4].unique_prefixes), 2),
      bench::num(ratio(static_cast<double>(stats[Platform::kCdn].unique_prefixes),
                       static_cast<double>(total.unique_prefixes)),
                 2));
  bench::compare(
      "PCH IP peers / RIS IP peers",
      bench::num(ratio(kPaper[2].ip_peers, kPaper[0].ip_peers), 1),
      bench::num(ratio(static_cast<double>(stats[Platform::kPch].ip_peers),
                       static_cast<double>(stats[Platform::kRis].ip_peers)),
                 1),
      "(PCH has many LAN sessions at IXPs)");
  bench::compare(
      "IP peers / AS peers (Total)",
      bench::num(ratio(kPaper[4].ip_peers, kPaper[4].as_peers), 2),
      bench::num(ratio(static_cast<double>(total.ip_peers),
                       static_cast<double>(total.as_peers)),
                 2));

  // IPv4 share of prefixes (paper: 96.64%).
  std::uint64_t v4 = 0, all = 0;
  for (const auto& node : study.graph().nodes()) {
    v4 += node.originated_v4.size();
    all += node.originated_v4.size() + node.originated_v6.size();
  }
  bench::compare("IPv4 share of prefixes", "96.64%",
                 stats::pct(static_cast<double>(v4) / static_cast<double>(all), 2));
  return 0;
}
