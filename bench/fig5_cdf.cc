// Fig 5: CDFs of (a) blackholed prefixes per blackholing provider,
// split transit/access vs IXP, and (b) blackholed prefixes per user,
// split by user network type (content users dominate).
#include "bench_common.h"

#include "stats/cdf.h"

using namespace bgpbh;
using topology::NetworkType;

int main() {
  bench::header("Fig 5 — prefixes per provider (a) and per user type (b)",
                "Giotsas et al., IMC'17, Fig 5a/5b + §7/§8");

  core::Study study(bench::focus_config());
  study.run();

  // ---- (a) per provider ------------------------------------------------
  std::map<core::ProviderRef, std::set<net::Prefix>> per_provider;
  for (const auto& e : study.events()) per_provider[e.provider].insert(e.prefix);

  stats::Cdf transit_cdf, ixp_cdf;
  std::size_t transit_1 = 0, transit_n = 0, ixp_1 = 0, ixp_n = 0;
  std::size_t transit_1k = 0, ixp_1k = 0;
  double scale = 1.0 / bench::kIntensity;
  for (const auto& [provider, prefixes] : per_provider) {
    double scaled = static_cast<double>(prefixes.size()) * scale;
    if (provider.is_ixp) {
      ixp_cdf.add(scaled);
      ++ixp_n;
      if (prefixes.size() == 1) ++ixp_1;
      if (scaled > 1000) ++ixp_1k;
    } else {
      auto type = study.registry().classify(provider.asn);
      if (type == NetworkType::kTransitAccess) {
        transit_cdf.add(scaled);
        ++transit_n;
        if (prefixes.size() == 1) ++transit_1;
        if (scaled > 1000) ++transit_1k;
      }
    }
  }
  std::printf("%s\n", transit_cdf.ascii_plot(
                          "Fig 5a — prefixes per transit/access provider "
                          "(scale-adjusted)", 60, 12, true).c_str());
  std::printf("%s\n", ixp_cdf.ascii_plot(
                          "Fig 5a — prefixes per IXP (scale-adjusted)", 60,
                          12, true).c_str());
  bench::compare("transit providers with >1000 prefixes", "only 20",
                 std::to_string(transit_1k) + " of " + std::to_string(transit_n));
  bench::compare("IXPs with one blackholed prefix", "~20%",
                 ixp_n ? stats::pct(static_cast<double>(ixp_1) / ixp_n, 0) : "n/a");
  bench::compare("transit providers with one prefix", "~15%",
                 transit_n ? stats::pct(static_cast<double>(transit_1) / transit_n, 0)
                           : "n/a");
  bench::compare("IXPs with >1000 prefixes", "14%",
                 ixp_n ? stats::pct(static_cast<double>(ixp_1k) / ixp_n, 0) : "n/a");

  // ---- (b) per user ------------------------------------------------------
  std::map<bgp::Asn, std::set<net::Prefix>> per_user;
  for (const auto& e : study.events()) {
    if (e.user) per_user[e.user].insert(e.prefix);
  }
  std::map<NetworkType, stats::Cdf> per_type;
  std::map<NetworkType, std::size_t> users_by_type, prefixes_by_type;
  std::size_t total_users = 0, total_prefixes = 0;
  for (const auto& [user, prefixes] : per_user) {
    auto type = study.registry().classify(user);
    per_type[type].add(static_cast<double>(prefixes.size()) * scale);
    users_by_type[type] += 1;
    prefixes_by_type[type] += prefixes.size();
    total_users += 1;
    total_prefixes += prefixes.size();
  }
  std::printf("\nFig 5b — per-user-type shares:\n");
  stats::Table table({"User type", "#users", "user share", "#prefixes",
                      "prefix share", "median pfx/user"});
  for (auto& [type, cdf] : per_type) {
    table.add_row({topology::to_string(type),
                   std::to_string(users_by_type[type]),
                   stats::pct(static_cast<double>(users_by_type[type]) / total_users, 0),
                   std::to_string(prefixes_by_type[type]),
                   stats::pct(static_cast<double>(prefixes_by_type[type]) / total_prefixes, 0),
                   bench::num(cdf.quantile(0.5), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  double content_users =
      static_cast<double>(users_by_type[NetworkType::kContent]) / total_users;
  double content_prefixes =
      static_cast<double>(prefixes_by_type[NetworkType::kContent]) / total_prefixes;
  bench::compare("content share of users", "18%", stats::pct(content_users, 0));
  bench::compare("content share of prefixes", "43%",
                 stats::pct(content_prefixes, 0));
  bench::compare("content users punch above their weight", "yes",
                 content_prefixes > content_users ? "yes" : "NO");
  std::printf("%s\n",
              per_type[NetworkType::kContent]
                  .ascii_plot("Fig 5b — prefixes per content user "
                              "(scale-adjusted)", 60, 10, true)
                  .c_str());
  return 0;
}
