// Shared bench provenance: every BENCH_*.json carries a "meta" object
// stamping the exact source revision, build type, and hardware the
// numbers were produced on, so trajectory comparisons (and the
// tools/check_bench_regression.py gate) can tell a real regression
// from a different-machine or Debug-build artifact.
//
// BGPBH_GIT_SHA / BGPBH_BUILD_TYPE are injected per bench target by
// CMake (see the bench section of CMakeLists.txt); building a bench
// .cc outside CMake still compiles — the fields degrade to "unknown".
#pragma once

#include <string>
#include <thread>

#ifndef BGPBH_GIT_SHA
#define BGPBH_GIT_SHA "unknown"
#endif
#ifndef BGPBH_BUILD_TYPE
#define BGPBH_BUILD_TYPE "unknown"
#endif

namespace bgpbh::bench {

// The value of a `"meta":` key — a flat JSON object, no trailing comma.
inline std::string meta_json() {
  std::string out = "{\"git_sha\": \"";
  out += BGPBH_GIT_SHA;
  out += "\", \"build_type\": \"";
  out += BGPBH_BUILD_TYPE;
  out += "\", \"hardware_threads\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += "}";
  return out;
}

}  // namespace bgpbh::bench
