// Fig 8: blackholing event durations — (a) CDF of ungrouped events vs
// events grouped with a 5-minute timeout (the ON/OFF probing practice),
// (b) histogram across the three regimes (short-lived / long-lived /
// very long-lived).  Includes the grouping-timeout sweep ablation.
#include "bench_common.h"

#include "stats/cdf.h"
#include "stats/histogram.h"

#include "core/grouping.h"

using namespace bgpbh;

int main() {
  bench::header("Fig 8 — durations of blackholing events",
                "Giotsas et al., IMC'17, Fig 8a/8b + §9");

  core::Study study(bench::focus_config());
  study.run();

  stats::Cdf ungrouped, grouped;
  for (const auto& e : study.prefix_events()) {
    if (e.includes_table_dump_start) continue;  // unknown start time
    ungrouped.add(static_cast<double>(std::max<util::SimTime>(e.duration(), 1)));
  }
  for (const auto& e : study.grouped_events()) {
    if (e.includes_table_dump_start) continue;
    grouped.add(static_cast<double>(std::max<util::SimTime>(e.duration(), 1)));
  }

  std::printf("%s\n", ungrouped.ascii_plot("Fig 8a — ungrouped durations (s, log x)",
                                           60, 12, true).c_str());
  std::printf("%s\n", grouped.ascii_plot("Fig 8a — grouped durations (s, log x)",
                                         60, 12, true).c_str());

  bench::compare("ungrouped events <= 1 minute", "over 70%",
                 stats::pct(ungrouped.at(60.0), 0));
  bench::compare("grouped events <= 1 minute", "just 4%",
                 stats::pct(grouped.at(60.0), 0));
  bench::compare("ungrouped events > 16 hours", "2%",
                 stats::pct(1.0 - ungrouped.at(16.0 * util::kHour), 1));
  bench::compare("grouped events > 16 hours", "30%",
                 stats::pct(1.0 - grouped.at(16.0 * util::kHour), 0));

  // Fig 8b: log-bucketed histogram (hours) of ungrouped durations.
  stats::LogHistogram hist(1.0, 4.0);
  for (const auto& e : study.prefix_events()) {
    if (e.includes_table_dump_start) continue;
    hist.add(static_cast<double>(std::max<util::SimTime>(e.duration(), 1)));
  }
  std::printf("\n%s\n",
              hist.ascii_plot("Fig 8b — ungrouped durations (s, log buckets, log y)")
                  .c_str());
  std::printf("three regimes: short-lived (minutes), long-lived (weeks),\n");
  std::printf("very long-lived (months: misconfigurations / reputation blocks)\n\n");

  // Ablation: sweep the grouping timeout (design decision #4).
  std::printf("grouping-timeout sweep (share of events <= 1 minute):\n");
  for (util::SimTime timeout : {0L, 60L, 300L, 900L, 3600L}) {
    auto g = core::group_events(study.prefix_events(), timeout);
    stats::Cdf cdf;
    for (const auto& e : g) {
      if (e.includes_table_dump_start) continue;
      cdf.add(static_cast<double>(std::max<util::SimTime>(e.duration(), 1)));
    }
    bench::compare(util::strf("timeout %s", util::format_duration(timeout).c_str()),
                   timeout == 300 ? "4% (paper)" : "-",
                   stats::pct(cdf.at(60.0), 1),
                   util::strf("%zu events", g.size()).c_str());
  }

  // Withdrawal mode mix.
  std::size_t explicit_w = 0, implicit_w = 0;
  for (const auto& e : study.events()) {
    (e.explicit_withdrawal ? explicit_w : implicit_w) += 1;
  }
  std::printf("\nwithdrawal modes (§4.2):\n");
  bench::compare("explicit WITHDRAW", "-",
                 stats::pct(static_cast<double>(explicit_w) /
                            (explicit_w + implicit_w), 0));
  bench::compare("implicit (re-announced without community)", "-",
                 stats::pct(static_cast<double>(implicit_w) /
                            (explicit_w + implicit_w), 0));
  return 0;
}
