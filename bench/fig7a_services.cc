// Fig 7a: services running on blackholed prefixes (March 2017):
// HTTP dominates (53%), co-location of FTP/SSH with HTTP, mail-protocol
// sextets, tarpits; plus the web-content and malicious-activity
// profiling of §8.
#include "bench_common.h"

#include "scans/profile.h"
#include "scans/reputation.h"

using namespace bgpbh;
using scans::Service;

int main() {
  bench::header("Fig 7a — services on blackholed prefixes (March 2017)",
                "Giotsas et al., IMC'17, Fig 7a + §8");

  core::Study study(bench::march2017_config());
  study.run();

  std::set<net::Prefix> prefix_set;
  for (const auto& e : study.events()) {
    if (e.prefix.is_v4()) prefix_set.insert(e.prefix);
  }
  std::vector<net::Prefix> prefixes(prefix_set.begin(), prefix_set.end());
  std::printf("blackholed IPv4 prefixes in March 2017: %zu (paper: 20,948; x%.0f scale)\n\n",
              prefixes.size(), 1.0 / bench::kIntensity);

  scans::ScanSynthesizer synth(study.graph(), 2017);
  scans::BlackholeProfiler profiler(synth);
  auto profile = profiler.profile(prefixes);

  stats::Table table({"Service", "#prefixes", "share"});
  for (std::size_t s = 0; s < scans::kNumServices; ++s) {
    table.add_row({scans::to_string(static_cast<Service>(s)),
                   std::to_string(profile.prefixes_with_service[s]),
                   stats::pct(static_cast<double>(profile.prefixes_with_service[s]) /
                              static_cast<double>(profile.total_prefixes), 1)});
  }
  table.add_row({"NONE", std::to_string(profile.prefixes_with_none),
                 stats::pct(static_cast<double>(profile.prefixes_with_none) /
                            static_cast<double>(profile.total_prefixes), 1)});
  std::printf("%s\n", table.to_string().c_str());

  auto share = [&](std::size_t n) {
    return stats::pct(static_cast<double>(n) /
                      static_cast<double>(profile.total_prefixes), 0);
  };
  std::printf("shape checks:\n");
  bench::compare("prefixes with an open service", "~60%",
                 share(profile.total_prefixes - profile.prefixes_with_none));
  bench::compare("HTTP share", "53%",
                 share(profile.prefixes_with_service[static_cast<std::size_t>(
                     Service::kHttp)]));
  bench::compare("FTP co-located with HTTP", ">90%",
                 profile.ftp_total
                     ? stats::pct(static_cast<double>(profile.ftp_with_http) /
                                  profile.ftp_total, 0)
                     : "n/a");
  bench::compare("SSH co-located with HTTP", "79%",
                 profile.ssh_total
                     ? stats::pct(static_cast<double>(profile.ssh_with_http) /
                                  profile.ssh_total, 0)
                     : "n/a");
  bench::compare("prefixes with all 6 mail protocols", "~10%",
                 share(profile.mail_sextet_prefixes));
  bench::compare("tarpit suspects (all ports open)", "845 (~4%)",
                 share(profile.tarpit_prefixes));
  bench::compare("host routes among blackholed prefixes", "20,088 of 20,948",
                 std::to_string(profile.host_routes) + " of " +
                     std::to_string(profile.total_prefixes));
  bench::compare("unique IPv4 addresses covered", "5.2M",
                 stats::with_commas(profile.covered_addresses),
                 "(mostly /32s plus a few wider subnets)");

  std::printf("\nweb content (§8):\n");
  bench::compare("HTTP GET response rate (blackholed)", "61%",
                 stats::pct(profile.http_response_rate(), 0));
  bench::compare("HTTP GET response rate (general)", "~90%",
                 stats::pct(synth.general_http_response_rate(), 0));
  bench::compare("prefixes hosting Alexa top-1M sites", "334 (~3% of HTTP)",
                 std::to_string(profile.alexa_prefixes));
  if (!profile.tld_counts.empty()) {
    std::string tlds;
    std::vector<std::pair<std::string, std::size_t>> ranked(
        profile.tld_counts.begin(), profile.tld_counts.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
      tlds += "." + ranked[i].first + " ";
    }
    bench::compare("dominant TLDs", ".com .ru .org .net .se", tlds);
  }

  std::printf("\nmalicious activity of blackholed IPs (§8):\n");
  scans::ReputationDb reputation(2017);
  auto day = util::day_index(util::from_date(2017, 3, 15));
  auto rep = reputation.daily_stats(day, prefixes);
  bench::compare("daily scanner/prober matches", "400-900 (at 20K pfx)",
                 std::to_string(rep.matches),
                 util::strf("(at %zu pfx)", prefixes.size()).c_str());
  bench::compare("probers among matches", ">90%",
                 rep.matches ? stats::pct(static_cast<double>(rep.probers) /
                                          rep.matches, 0)
                             : "n/a");
  bench::compare("both scanner and prober", "~2%",
                 rep.matches ? stats::pct(static_cast<double>(rep.both) /
                                          rep.matches, 0)
                             : "n/a");
  bench::compare("IPs with login attempts", "500-800 (at 20K pfx)",
                 std::to_string(rep.login_ips));
  return 0;
}
