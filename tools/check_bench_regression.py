#!/usr/bin/env python3
"""Perf-regression gate over BENCH_stream.json stage breakdowns.

Compares a freshly measured BENCH_stream.json against the checked-in
baseline and fails (exit 1) when any gated stage regresses by more
than the tolerance.  Gated stages are the hot per-unit costs the
pipeline's design promises to hold:

    route_ns_per_subupdate       shard-worker routing cost
    drain_ns_per_event           store-drain cost
    query_ns_per_event           finalized-store query cost
    checkpoint_ns_per_event      per-update cost of one checkpoint cut
    recover_ms                   recover-on-start wall clock
    fabric_append_ns_per_event   loopback distributed-append cost
    rebalance_ms                 one live slot migration, wall clock
    detection_latency_p99_ms     p99 ingest->event-close latency,
                                 end-to-end through the fabric

The recovery stages are fsync-bound and the fabric stages add loopback
TCP + a second process tree on top, so they are gated at 3x the base
tolerance (see TOLERANCE_SCALE) — wide enough to absorb shared runner
I/O and scheduler jitter while still catching an order-of-magnitude
serialization or replay regression.  Other stages (sink dispatch,
spill, reopen) are I/O- and scheduler-bound with no promise worth
gating; they are printed for the record but never fail the build.

The fabric stages exist in BENCH_stream.json only when perf_stream ran
with --fabric; CI always passes the flag, so a missing fabric stage in
a fresh measurement is itself a regression and fails the gate.

Usage:
    tools/check_bench_regression.py BASELINE.json FRESH.json

Tolerance defaults to 25% and can be overridden with the
BGPBH_BENCH_TOLERANCE environment variable (e.g. "0.40" for 40%).
Stdlib only; no dependencies.
"""

import json
import os
import sys

GATED_STAGES = (
    "route_ns_per_subupdate",
    "drain_ns_per_event",
    "query_ns_per_event",
    "checkpoint_ns_per_event",
    "recover_ms",
    "fabric_append_ns_per_event",
    "rebalance_ms",
    "detection_latency_p99_ms",
)

# Per-stage multiplier on the base tolerance for stages whose cost is
# dominated by fsync/disk/loopback-TCP rather than CPU.
TOLERANCE_SCALE = {
    "checkpoint_ns_per_event": 3.0,
    "recover_ms": 3.0,
    "fabric_append_ns_per_event": 3.0,
    "rebalance_ms": 3.0,
    # Wall-clock e2e latency: dominated by batch/drain cadence and
    # scheduler timing, not CPU — same 3x headroom as the other
    # wall-clock stages.  Unit-aware via stage_unit() (_ms suffix).
    "detection_latency_p99_ms": 3.0,
}

DEFAULT_TOLERANCE = 0.25


def stage_unit(name):
    return "ms" if name.endswith("_ms") else "ns"


def load_stages(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    stages = doc.get("stage_breakdown")
    if not isinstance(stages, dict):
        raise SystemExit(f"{path}: no stage_breakdown object")
    return stages


def stage_value(stages, name, path):
    v = stages.get(name)
    # Histogram-shaped entries carry the per-unit cost as "mean".
    if isinstance(v, dict):
        v = v.get("mean")
    if not isinstance(v, (int, float)) or v <= 0:
        raise SystemExit(f"{path}: stage {name!r} missing or non-positive: {v!r}")
    return float(v)


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, fresh_path = argv[1], argv[2]
    tolerance = float(os.environ.get("BGPBH_BENCH_TOLERANCE", DEFAULT_TOLERANCE))

    baseline = load_stages(baseline_path)
    fresh = load_stages(fresh_path)

    failures = []
    print(f"bench regression gate: tolerance {tolerance:.0%}")
    print(f"  baseline: {baseline_path}")
    print(f"  fresh:    {fresh_path}")
    for name in GATED_STAGES:
        base = stage_value(baseline, name, baseline_path)
        cur = stage_value(fresh, name, fresh_path)
        ratio = cur / base
        stage_tolerance = tolerance * TOLERANCE_SCALE.get(name, 1.0)
        verdict = "ok"
        if ratio > 1.0 + stage_tolerance:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"  {name:28s} {base:10.2f} -> {cur:10.2f} {stage_unit(name)}  "
              f"({ratio - 1.0:+.1%}, allowed +{stage_tolerance:.0%})  "
              f"[{verdict}]")

    # Ungated stages: report only.
    for name in sorted(set(baseline) & set(fresh) - set(GATED_STAGES)):
        try:
            base = stage_value(baseline, name, baseline_path)
            cur = stage_value(fresh, name, fresh_path)
        except SystemExit:
            continue
        print(f"  {name:28s} {base:10.2f} -> {cur:10.2f} {stage_unit(name)}  "
              f"({cur / base - 1.0:+.1%})  [info]")

    if failures:
        print(f"FAIL: {len(failures)} stage(s) regressed beyond "
              f"{tolerance:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
