// shard_server: one fabric shard-server process.
//
//   shard_server --dir DATA_DIR [--port N] [--producers N]
//                [--window-start YYYY-MM-DD] [--window-end YYYY-MM-DD]
//                [--intensity X] [--seed N] [--trace]
//                [--trace-threshold-ns N] [--trace-capacity N]
//
// Binds the port (0 = ephemeral), prints "PORT <n>" on stdout (the
// line a spawning client parses), and serves fabric frames until a
// SHUTDOWN frame arrives.  Slot state persists under DATA_DIR —
// rerunning on the same directory recovers every slot from its last
// drained checkpoint, which is how the fabric survives a SIGKILL'd
// server.
//
// The study knobs must match the fabric client's: both sides derive
// dictionary/registry substrates deterministically from them.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fabric/server.h"
#include "util/time.h"

namespace {

bool parse_date(const char* text, bgpbh::util::SimTime& out) {
  int year = 0, month = 0, day = 0;
  if (std::sscanf(text, "%d-%d-%d", &year, &month, &day) != 3) return false;
  out = bgpbh::util::from_date(year, month, day);
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dir DATA_DIR [--port N] [--producers N]\n"
               "          [--window-start YYYY-MM-DD] [--window-end "
               "YYYY-MM-DD] [--intensity X] [--seed N]\n"
               "          [--trace] [--trace-threshold-ns N] "
               "[--trace-capacity N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bgpbh::fabric::ShardServerConfig config;
  config.study.window_start = bgpbh::util::from_date(2017, 3, 15);
  config.study.window_end = bgpbh::util::from_date(2017, 3, 16);
  config.study.workload.intensity_scale = 0.05;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--dir") == 0 && value) {
      config.dir = value;
      ++i;
    } else if (std::strcmp(arg, "--port") == 0 && value) {
      config.port = static_cast<std::uint16_t>(std::atoi(value));
      ++i;
    } else if (std::strcmp(arg, "--producers") == 0 && value) {
      config.num_producers = static_cast<std::size_t>(std::atoi(value));
      ++i;
    } else if (std::strcmp(arg, "--window-start") == 0 && value) {
      if (!parse_date(value, config.study.window_start)) return usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--window-end") == 0 && value) {
      if (!parse_date(value, config.study.window_end)) return usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--intensity") == 0 && value) {
      config.study.workload.intensity_scale = std::atof(value);
      ++i;
    } else if (std::strcmp(arg, "--seed") == 0 && value) {
      config.study.seed = static_cast<std::uint64_t>(std::atoll(value));
      ++i;
    } else if (std::strcmp(arg, "--trace") == 0) {
      // Slot sessions record slow fabric.server.* spans into their
      // trace rings; STATS ships them to fleet_telemetry() clients.
      config.trace.enabled = true;
    } else if (std::strcmp(arg, "--trace-threshold-ns") == 0 && value) {
      config.trace.slow_threshold_ns =
          static_cast<std::uint64_t>(std::atoll(value));
      ++i;
    } else if (std::strcmp(arg, "--trace-capacity") == 0 && value) {
      config.trace.capacity = static_cast<std::size_t>(std::atoll(value));
      ++i;
    } else {
      return usage(argv[0]);
    }
  }
  if (config.dir.empty()) return usage(argv[0]);
  try {
    bgpbh::fabric::ShardServer server(std::move(config));
    // The spawner blocks on this line to learn the bound (possibly
    // ephemeral) port.
    std::printf("PORT %u\n", static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    server.wait();
    server.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard_server: %s\n", e.what());
    return 1;
  }
  return 0;
}
